"""Canned reproductions of every figure in the paper's evaluation.

Each ``fig*`` function runs the corresponding experiment at a configurable
``scale`` (fraction of the default op/record counts — the paper's 60 M-op
runs are scaled to simulator-friendly sizes; shapes, not absolute ops,
are the reproduction target) and returns printable dict-rows.  The
``benchmarks/`` tree wraps these for pytest-benchmark; EXPERIMENTS.md
records paper-vs-measured values produced by these exact functions.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional, Sequence

from ..baselines import (
    MemcachedClient,
    MemcachedServer,
    RamcloudClient,
    RamcloudServer,
    RedisClient,
    RedisServer,
)
from ..config import SimConfig
from ..core import HydraCluster
from ..hardware import Machine
from ..index.hashing import hash64
from ..protocol import Op, Status
from ..rdma import Fabric, TcpNetwork
from ..sim import Simulator
from ..workloads import (
    FIG2_APPS,
    G2Profile,
    HdfsBackend,
    HydraBackend,
    HydraTcpBackend,
    InMemoryDatabase,
    DbClient,
    PAPER_WORKLOADS,
    YcsbWorkload,
    hydra_g2_cluster,
    preload_entities,
    run_engines,
    run_job,
)
from ..workloads.ycsb import YcsbSpec
from .runner import drive_ycsb, preload_dicts, preload_hydra, run_hydra_ycsb
from .stats import RunResult

__all__ = [
    "default_scale",
    "fig2_mapreduce",
    "fig3_sensemaking",
    "fig9_overall",
    "fig10_rdma_choices",
    "fig11_hit_analysis",
    "fig12_scale_out",
    "fig12_scale_up",
    "fig13_replication",
    "ablation_hash_table",
    "ablation_numa",
    "ablation_rptr_sharing",
    "ablation_subsharding",
    "ablation_sleep_backoff",
    "ablation_transport",
    "ablation_ud_messaging",
    "ablation_lease_length",
    "ablation_value_size",
    "ablation_ack_interval",
    "failover_availability",
    "inflight_sweep",
    "multiget_sweep",
    "recovery_dualfail",
    "server_sweep",
    "write_failover_artifact",
    "write_inflight_artifact",
    "write_multiget_artifact",
    "write_recovery_artifact",
    "write_sweep_artifact",
]

#: Default op/record count at scale=1.0 (the paper uses 60 M of each).
BASE_OPS = 10_000

_MS = 1_000_000


def default_scale() -> float:
    """Scale factor from the REPRO_SCALE environment variable (default 1)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def _scaled_spec(base: YcsbSpec, scale: float) -> YcsbSpec:
    n = max(500, int(BASE_OPS * scale))
    return base.scaled(records=n, ops=n)


def _workloads(scale: float,
               subset: Optional[Iterable[str]] = None) -> list[YcsbWorkload]:
    specs = PAPER_WORKLOADS
    if subset is not None:
        wanted = set(subset)
        specs = tuple(s for s in specs if s.name in wanted)
    return [YcsbWorkload(_scaled_spec(s, scale)) for s in specs]


# ---------------------------------------------------------------------------
# Baseline worlds (shared TCP/RDMA topology builder)
# ---------------------------------------------------------------------------

class _World:
    """A bare simulated cluster for baseline systems."""

    def __init__(self, n_machines: int, config: Optional[SimConfig] = None):
        self.config = config or SimConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, self.config)
        self.tcpnet = TcpNetwork(self.sim, self.config)
        self.machines = [Machine(self.sim, i, self.config)
                         for i in range(n_machines)]
        for m in self.machines:
            self.fabric.attach(m)
            self.tcpnet.attach(m)


def _run_baseline(kind: str, workload: YcsbWorkload,
                  n_clients: int) -> RunResult:
    world = _World(6)  # 1 server + 5 client machines, as in §6
    server_machine = world.machines[0]
    client_machines = world.machines[1:]
    if kind == "memcached":
        server = MemcachedServer(world.sim, world.config, server_machine)
        preload_dicts([server.store], lambda k: 0, workload)
        server.start()
        clients = [MemcachedClient(world.sim, world.config,
                                   client_machines[i % 5], server)
                   for i in range(n_clients)]
    elif kind == "redis":
        server = RedisServer(world.sim, world.config, server_machine)
        n_inst = len(server.instances)
        preload_dicts([inst.store for inst in server.instances],
                      lambda k: hash64(k) % n_inst, workload)
        server.start()
        clients = [RedisClient(world.sim, world.config,
                               client_machines[i % 5], server)
                   for i in range(n_clients)]
    elif kind == "ramcloud":
        server = RamcloudServer(world.sim, world.config, server_machine)
        preload_dicts([server.store], lambda k: 0, workload)
        server.start()
        clients = [RamcloudClient(world.sim, world.config,
                                  client_machines[i % 5], server)
                   for i in range(n_clients)]
    else:
        raise ValueError(f"unknown baseline {kind!r}")
    return drive_ycsb(world.sim, clients, workload,
                      name=f"{kind}/{workload.spec.name}")


def _run_hydra(workload: YcsbWorkload, n_clients: int,
               config: Optional[SimConfig] = None, shards: int = 4,
               n_server_machines: int = 1,
               client_machines: int = 5) -> RunResult:
    cluster = HydraCluster(config=config or SimConfig(),
                           n_server_machines=n_server_machines,
                           shards_per_server=shards,
                           n_client_machines=client_machines)
    return run_hydra_ycsb(cluster, workload, n_clients=n_clients,
                          clients_per_machine=-(-n_clients // client_machines),
                          name=f"hydradb/{workload.spec.name}")


# ---------------------------------------------------------------------------
# Fig. 2 — MapReduce acceleration
# ---------------------------------------------------------------------------

def fig2_mapreduce(scale: float = 1.0,
                   apps=FIG2_APPS) -> list[dict]:
    """Speedup of HydraDB (RDMA and TCP) over in-memory HDFS per app."""
    rows = []
    for profile in apps:
        if scale != 1.0:
            from dataclasses import replace
            profile = replace(profile,
                              input_mb=max(8, int(profile.input_mb * scale)))

        world = _World(3)
        hdfs = HdfsBackend(world.sim, world.config, world.machines[0],
                           world.machines[1:])
        conns = [world.sim.run(until=world.sim.process(
            hdfs.connect(world.machines[1 + i % 2])))
            for i in range(profile.n_tasks)]
        t_hdfs = run_job(world.sim, profile, conns)

        backend = HydraBackend(None, SimConfig())
        backend.preload(profile.input_mb)
        conns = [backend.sim.run(until=backend.sim.process(
            backend.connect(i))) for i in range(profile.n_tasks)]
        t_rdma = run_job(backend.sim, profile, conns)

        world2 = _World(3)
        tcp = HydraTcpBackend(world2.sim, world2.config, world2.machines[0])
        conns = [world2.sim.run(until=world2.sim.process(
            tcp.connect(world2.machines[1 + i % 2])))
            for i in range(profile.n_tasks)]
        t_tcp = run_job(world2.sim, profile, conns)

        rows.append({
            "app": profile.name,
            "framework": profile.framework,
            "hdfs_ms": t_hdfs / 1e6,
            "hydra_rdma_ms": t_rdma / 1e6,
            "hydra_tcp_ms": t_tcp / 1e6,
            "speedup_rdma": t_hdfs / t_rdma,
            "speedup_tcp": t_hdfs / t_tcp,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 3 — G2 Sensemaking
# ---------------------------------------------------------------------------

def fig3_sensemaking(scale: float = 1.0,
                     engine_counts: Sequence[int] = (1, 2, 4, 8, 16, 32)
                     ) -> list[dict]:
    """Events/sec vs engine count: HydraDB vs the in-memory database."""
    profile = G2Profile(entity_space=max(1000, int(10_000 * scale)))
    events = max(20, int(60 * scale))
    rows = []
    for n in engine_counts:
        world = _World(5)
        db = InMemoryDatabase(world.sim, world.config, world.machines[0])
        preload_entities(db.tables.__setitem__, profile)
        db_clients = [DbClient(world.sim, world.machines[1 + i % 4], db)
                      for i in range(n)]
        db_eps, _ = run_engines(world.sim, db_clients, profile, events)

        cluster = hydra_g2_cluster()
        from ..protocol import Op
        preload_entities(
            lambda k, v: cluster.route(k).store.upsert(k, v, Op.PUT), profile)
        cluster.start()
        hy_clients = [cluster.client(i % 4) for i in range(n)]
        hy_eps, _ = run_engines(cluster.sim, hy_clients, profile, events)
        rows.append({
            "engines": n,
            "db_events_per_s": db_eps,
            "hydra_events_per_s": hy_eps,
            "ratio": hy_eps / db_eps,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 — overall comparison against Memcached / Redis / RAMCloud
# ---------------------------------------------------------------------------

def fig9_overall(scale: float = 1.0, n_clients: int = 50,
                 systems: Sequence[str] = ("hydradb", "memcached", "redis",
                                           "ramcloud"),
                 subset: Optional[Iterable[str]] = None) -> list[dict]:
    """Peak throughput + average GET/UPDATE latency per system per mix."""
    rows = []
    for workload in _workloads(scale, subset):
        for system in systems:
            if system == "hydradb":
                res = _run_hydra(workload, n_clients)
            else:
                res = _run_baseline(system, workload, n_clients)
            rows.append({
                "workload": workload.spec.name,
                "system": system,
                "throughput_mops": res.throughput_mops,
                "get_us": res.get_latency.mean_us,
                "update_us": res.update_latency.mean_us,
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — incremental RDMA design choices
# ---------------------------------------------------------------------------

FIG10_VARIANTS: dict[str, dict] = {
    "Send/Recv": {"hydra": {"rdma_write_messaging": False},
                  "client": {"rptr_cache_enabled": False}},
    "RDMA Write Only": {"client": {"rptr_cache_enabled": False}},
    "RDMA Write + Read": {},
    "Pipeline + RDMA Write": {"hydra": {"pipelined_shards": True},
                              "client": {"rptr_cache_enabled": False}},
}


def fig10_rdma_choices(scale: float = 1.0, n_clients: int = 50,
                       subset: Optional[Iterable[str]] = None,
                       variants: Optional[Iterable[str]] = None
                       ) -> list[dict]:
    """Throughput/latency per messaging variant per workload (Fig. 10)."""
    rows = []
    chosen = {k: v for k, v in FIG10_VARIANTS.items()
              if variants is None or k in set(variants)}
    for workload in _workloads(scale, subset):
        for vname, overrides in chosen.items():
            cfg = SimConfig().with_overrides(**overrides)
            res = _run_hydra(workload, n_clients, config=cfg)
            rows.append({
                "workload": workload.spec.name,
                "variant": vname,
                "throughput_mops": res.throughput_mops,
                "get_us": res.get_latency.mean_us,
                "update_us": res.update_latency.mean_us,
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — remote-pointer hit analysis
# ---------------------------------------------------------------------------

def fig11_hit_analysis(scale: float = 1.0,
                       n_clients: int = 50) -> list[dict]:
    """Successful/invalid remote-pointer hit counts per workload."""
    rows = []
    for workload in _workloads(scale):
        cluster = HydraCluster(n_server_machines=1, shards_per_server=4,
                               n_client_machines=5)
        res = run_hydra_ycsb(cluster, workload, n_clients=n_clients,
                             clients_per_machine=-(-n_clients // 5))
        stats = res.extras["rptr"]
        rows.append({
            "workload": workload.spec.name,
            "successful_hits": stats["successful_hits"],
            "invalid_hits": stats["invalid_hits"],
            "misses": stats["misses"],
            "ops": res.measured_ops,
        })
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — scalability (scale-out and scale-up)
# ---------------------------------------------------------------------------

def _colocated_scaleout_cluster(n_servers: int) -> HydraCluster:
    """§6.3 topology: 8 machines total; 60 clients live on the last 6, so
    larger deployments increasingly co-locate servers with clients.

    Beyond 7 servers the co-located form factor is exhausted; larger
    deployments (the 64-server point the batched kernel makes affordable)
    keep the 6 dedicated client hosts and add pure server machines.
    """
    cluster = HydraCluster(n_server_machines=n_servers,
                           shards_per_server=1,
                           n_client_machines=(8 - n_servers
                                              if n_servers < 8 else 6))
    return cluster


def fig12_scale_out(scale: float = 1.0, n_clients: int = 60,
                    server_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 64),
                    subset: Optional[Iterable[str]] = None) -> list[dict]:
    """Normalized throughput vs server count (Fig. 12a,b topology),
    extended past the paper's 7-machine testbed with a 64-server point."""
    rows = []
    for workload in _workloads(scale, subset):
        base_mops = None
        for n in server_counts:
            cluster = _colocated_scaleout_cluster(n)
            all_machines = cluster.server_machines + cluster.client_machines
            client_hosts = all_machines[-6:]
            preload_hydra(cluster, workload)
            cluster.start()
            clients = [cluster.client_on(client_hosts[i % 6])
                       for i in range(n_clients)]
            res = drive_ycsb(cluster.sim, clients, workload,
                             name=f"scaleout/{n}")
            if base_mops is None:
                base_mops = res.throughput_mops
            rows.append({
                "workload": workload.spec.name,
                "servers": n,
                "throughput_mops": res.throughput_mops,
                "normalized": res.throughput_mops / base_mops,
            })
    return rows


def fig12_scale_up(scale: float = 1.0, n_clients: int = 60,
                   shard_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
                   subset: Optional[Iterable[str]] = None) -> list[dict]:
    """Normalized throughput vs shards on one machine (Fig. 12c,d)."""
    rows = []
    for workload in _workloads(scale, subset):
        base_mops = None
        for n in shard_counts:
            res = _run_hydra(workload, n_clients, shards=n,
                             client_machines=6)
            if base_mops is None:
                base_mops = res.throughput_mops
            rows.append({
                "workload": workload.spec.name,
                "shards": n,
                "throughput_mops": res.throughput_mops,
                "normalized": res.throughput_mops / base_mops,
            })
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — replication protocols
# ---------------------------------------------------------------------------

def fig13_replication(scale: float = 1.0,
                      client_counts: Sequence[int] = (1, 10, 20, 40),
                      inserts_per_client: Optional[int] = None) -> list[dict]:
    """Average INSERT latency under each replication protocol."""
    inserts = inserts_per_client or max(20, int(60 * scale))
    protocols = [
        ("no replication", 0, "rdma_log"),
        ("rdma logging x1", 1, "rdma_log"),
        ("rdma logging x2", 2, "rdma_log"),
        ("strict req/ack x1", 1, "strict"),
        ("strict req/ack x2", 2, "strict"),
    ]
    rows = []
    for n_clients in client_counts:
        base_ns = None
        for label, replicas, mode in protocols:
            cfg = SimConfig().with_overrides(
                replication={"replicas": replicas, "mode": mode})
            cluster = HydraCluster(config=cfg, n_server_machines=1,
                                   shards_per_server=1, n_client_machines=4)
            cluster.start()
            lat: list[int] = []

            def worker(c, wid):
                for i in range(inserts):
                    t0 = cluster.sim.now
                    yield from c.insert(f"w{wid}-key-{i:08d}".encode(),
                                        b"v" * 32)
                    lat.append(cluster.sim.now - t0)

            clients = [cluster.client(i % 4) for i in range(n_clients)]
            cluster.run(*[worker(c, i) for i, c in enumerate(clients)])
            avg = sum(lat) / len(lat)
            if base_ns is None:
                base_ns = avg
            rows.append({
                "clients": n_clients,
                "protocol": label,
                "avg_insert_us": avg / 1000.0,
                "overhead_pct": (avg / base_ns - 1.0) * 100.0,
            })
    return rows


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ---------------------------------------------------------------------------

def ablation_hash_table(scale: float = 1.0, n_clients: int = 50
                        ) -> list[dict]:
    """Compact vs chained indexing (§4.1.3): throughput + cachelines/op."""
    workload = _workloads(scale, subset=["(b) 90% GET zipf"])[0]
    rows = []
    for kind in ("compact", "chained"):
        cfg = SimConfig().with_overrides(
            client={"rptr_cache_enabled": False},
            hydra={"buckets_per_shard": 1 << 9})  # force collisions
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=4, n_client_machines=5,
                               table_kind=kind)
        res = run_hydra_ycsb(cluster, workload, n_clients=n_clients,
                             clients_per_machine=10)
        tables = [s.store.table for s in cluster.shards()]
        total_ops = cluster.metrics.counter("shard.requests").value
        lines = sum(t.total_lines for t in tables)
        keycmps = sum(t.total_keycmps for t in tables)
        rows.append({
            "table": kind,
            "throughput_mops": res.throughput_mops,
            "get_us": res.get_latency.mean_us,
            "lines_per_op": lines / max(1, total_ops),
            "keycmps_per_op": keycmps / max(1, total_ops),
        })
    return rows


def ablation_numa(scale: float = 1.0, n_clients: int = 50) -> list[dict]:
    """NUMA-confined vs interleaved vs remote shard memory (§4.1.2)."""
    workload = _workloads(scale, subset=["(a) 50% GET zipf"])[0]
    rows = []
    for mode in ("local", "interleaved", "remote"):
        cfg = SimConfig().with_overrides(
            client={"rptr_cache_enabled": False})
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=4, n_client_machines=5,
                               numa_mode=mode)
        res = run_hydra_ycsb(cluster, workload, n_clients=n_clients,
                             clients_per_machine=10)
        rows.append({
            "numa_mode": mode,
            "throughput_mops": res.throughput_mops,
            "get_us": res.get_latency.mean_us,
            "update_us": res.update_latency.mean_us,
        })
    return rows


def ablation_rptr_sharing(scale: float = 1.0,
                          n_clients: int = 20) -> list[dict]:
    """Shared vs exclusive remote-pointer cache (§4.2.4) under updates."""
    spec = YcsbSpec(name="sharing", get_fraction=0.9,
                    distribution="zipfian")
    workload = YcsbWorkload(_scaled_spec(spec, scale))
    rows = []
    for sharing in (True, False):
        cfg = SimConfig().with_overrides(client={"rptr_sharing": sharing})
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=4, n_client_machines=1)
        preload_hydra(cluster, workload)
        cluster.start()
        clients = [cluster.client(0) for _ in range(n_clients)]
        res = drive_ycsb(cluster.sim, clients, workload,
                         name=f"sharing={sharing}")
        # Aggregate over distinct cache objects (one shared vs N exclusive).
        caches = {id(c.cache): c.cache for c in clients}
        successful = sum(c.successful_hits for c in caches.values())
        invalid = sum(c.invalid_hits for c in caches.values())
        rows.append({
            "sharing": sharing,
            "caches": len(caches),
            "throughput_mops": res.throughput_mops,
            "successful_hits": successful,
            "invalid_hits": invalid,
        })
    return rows


def ablation_ud_messaging(background_qps=(0, 256, 512),
                          loss: float = 0.02,
                          echoes: int = 300) -> list[dict]:
    """HERD's UD messaging vs HydraDB's RC choice (§3, §4.2.1).

    An echo microbenchmark at the verb level: round-trip latency of
    RC Send/Recv vs UD datagrams while unrelated RC connections inflate
    the NIC's QP count, plus delivery rates with injected datagram loss.
    UD stays flat and fast (no connection state) but loses messages —
    the reliability gap the paper holds against HERD for enterprise use.
    """
    rows = []
    for transport in ("rc_send", "ud"):
        for bg in background_qps:
            cfg = SimConfig().with_overrides(
                nic={"ud_drop_probability": loss if transport == "ud"
                     else 0.0})
            world = _World(2, config=cfg)
            for _ in range(bg):
                world.fabric.connect(world.machines[0].nic,
                                     world.machines[1].nic)
            sim = world.sim
            delivered = {"n": 0}
            rtts: list[int] = []
            if transport == "rc_send":
                cq, sq = world.fabric.connect(world.machines[0].nic,
                                              world.machines[1].nic)

                def echo_server(sq=sq):
                    while True:
                        cqe = sq.recv_cq.poll_one()
                        if cqe is None:
                            yield sq.recv_cq.wait()
                            continue
                        sq.post_recv()
                        yield sq.post_send(cqe.data)

                sq.post_recv()
                sim.process(echo_server())

                def client(cq=cq):
                    for _i in range(echoes):
                        cq.post_recv()
                        t0 = sim.now
                        yield cq.post_send(b"x" * 64)
                        while True:
                            cqe = cq.recv_cq.poll_one()
                            if cqe is not None:
                                rtts.append(sim.now - t0)
                                delivered["n"] += 1
                                break
                            yield cq.recv_cq.wait()

                sim.run(until=sim.process(client()))
            else:
                cu = world.fabric.create_ud_qp(world.machines[0].nic)
                su = world.fabric.create_ud_qp(world.machines[1].nic)

                def ud_server(cu=cu, su=su):
                    while True:
                        cqe = su.recv_cq.poll_one()
                        if cqe is None:
                            yield su.recv_cq.wait()
                            continue
                        su.post_recv()
                        yield su.post_send(cu, cqe.data)

                su.post_recv()
                sim.process(ud_server())

                def ud_client(cu=cu, su=su):
                    for _i in range(echoes):
                        cu.post_recv()
                        t0 = sim.now
                        yield cu.post_send(su, b"x" * 64)
                        deadline = sim.timeout(100_000)  # 100 us timeout
                        got = yield sim.any_of([cu.recv_cq.wait(), deadline])
                        del got
                        cqe = cu.recv_cq.poll_one()
                        if cqe is not None:
                            rtts.append(sim.now - t0)
                            delivered["n"] += 1

                sim.run(until=sim.process(ud_client()))
            rows.append({
                "transport": transport,
                "background_qps": bg,
                "delivered_pct": 100.0 * delivered["n"] / echoes,
                "mean_rtt_us": (sum(rtts) / len(rtts) / 1000.0)
                if rtts else float("nan"),
            })
    return rows


def ablation_transport(scale: float = 1.0, n_clients: int = 50
                       ) -> list[dict]:
    """HydraDB-RDMA vs HydraDB-TCP (the TCP/IP mode §6 mentions).

    Same server logic, same workload; only the transport differs.  This
    is the KV-level version of Fig. 2's RDMA-vs-TCP comparison.
    """
    workload = _workloads(scale, subset=["(b) 90% GET zipf"])[0]
    rows = []
    for transport in ("rdma", "tcp"):
        cfg = SimConfig().with_overrides(hydra={"transport": transport})
        res = _run_hydra(workload, n_clients, config=cfg)
        rows.append({
            "transport": transport,
            "throughput_mops": res.throughput_mops,
            "get_us": res.get_latency.mean_us,
            "update_us": res.update_latency.mean_us,
        })
    return rows


def ablation_sleep_backoff(scale: float = 1.0) -> list[dict]:
    """§4.2.1: high-resolution sleep vs pure busy polling under light load.

    One client issuing a request every ~200 us: the sleep-mode shard burns
    almost no CPU at a ~50 ns detection penalty; the busy poller pegs its
    core for the same latency class.
    """
    del scale  # fixed-size experiment
    rows = []
    for backoff in (True, False):
        cfg = SimConfig().with_overrides(cpu={"sleep_backoff": backoff})
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1, n_client_machines=1)
        cluster.start()
        client = cluster.client()
        lat: list[int] = []

        def app():
            yield from client.put(b"k", b"v" * 32)
            for i in range(300):
                yield cluster.sim.timeout(200_000)  # light load
                t0 = cluster.sim.now
                yield from client.update(b"k", b"v" * 32)
                lat.append(cluster.sim.now - t0)

        cluster.run(app())
        shard = cluster.shards()[0]
        rows.append({
            "sleep_backoff": backoff,
            "core_utilization_pct": shard.core.utilization() * 100.0,
            "avg_update_us": sum(lat) / len(lat) / 1000.0,
        })
    return rows


def ablation_subsharding(scale: float = 1.0, n_clients: int = 60
                         ) -> list[dict]:
    """§6.3 sub-sharding vs plain multi-shard scale-up past the QP wall.

    Read-heavy pointer-cached traffic (the regime where connection count
    saturates the NIC) plus a message-heavy contrast row where the single
    dispatcher binds instead.
    """
    rows = []
    for regime, gf, records_mult, ops_mult in (
            ("read-heavy cached", 1.0, 0.05, 0.6),
            ("message-heavy", 0.5, 0.3, 0.3)):
        for label, cfg, shards in (
                ("8 shards (480 QPs)", SimConfig(), 8),
                ("1x8 sub-shards (60 QPs)",
                 SimConfig().with_overrides(hydra={"subshards": 8}), 1)):
            spec = YcsbSpec(name=f"{regime}",
                            n_records=max(300, int(BASE_OPS * records_mult
                                                   * scale)),
                            n_ops=max(600, int(BASE_OPS * ops_mult * scale)),
                            get_fraction=gf, distribution="zipfian")
            workload = YcsbWorkload(spec)
            cluster = HydraCluster(config=cfg, n_server_machines=1,
                                   shards_per_server=shards,
                                   n_client_machines=6)
            res = run_hydra_ycsb(cluster, workload, n_clients=n_clients,
                                 clients_per_machine=10)
            rows.append({
                "regime": regime,
                "layout": label,
                "server_qps": cluster.server_machines[0].nic.active_qps,
                "throughput_mops": res.throughput_mops,
                "get_us": res.get_latency.mean_us,
            })
    return rows


def ablation_lease_length(scale: float = 1.0,
                          lease_seconds: Sequence[float] = (0.002, 0.05,
                                                            2.0),
                          n_clients: int = 20) -> list[dict]:
    """§4.2.3 / C-Hint [31]: the lease-length trade-off.

    Short leases cap how long retired extents linger (low memory
    retention) but expire cached pointers quickly (fewer one-sided hits);
    long leases maximize the fast path at the cost of arena occupancy.
    The run is stretched in simulated time so short leases actually lapse.
    """
    spec = YcsbSpec(name="lease", get_fraction=0.9, distribution="zipfian")
    workload = YcsbWorkload(_scaled_spec(spec, scale * 0.5))
    rows = []
    for secs in lease_seconds:
        ns = int(secs * 1e9)
        cfg = SimConfig().with_overrides(
            hydra={"lease_min_ns": ns, "lease_max_ns": max(ns, ns * 4)},
            memory={"reclaim_period_ns": max(100_000, ns // 10)},
        )
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=4, n_client_machines=2)
        preload_hydra(cluster, workload)
        cluster.start()
        clients = [cluster.client(i % 2) for i in range(n_clients)]
        # Fixed pacing (~5 ms/op): the run spans many short-lease windows
        # but ends before the longest lease lapses.
        think_ns = 5_000_000

        def paced(idx, client):
            ops, keys = workload.slice_for(idx, n_clients)
            ks = workload.keyspace
            for j in range(len(ops)):
                yield cluster.sim.timeout(think_ns)
                key = ks.key(int(keys[j]))
                if ops[j] == 0:
                    yield from client.get(key)
                else:
                    yield from client.update(key, ks.value(int(keys[j])))

        cluster.run(*[paced(i, c) for i, c in enumerate(clients)])
        stats = cluster.rptr_stats()
        pending = sum(s.store.reclaimer.pending for s in cluster.shards())
        live = sum(s.store.alloc.live_extents for s in cluster.shards())
        total_lookups = (stats["successful_hits"] + stats["invalid_hits"]
                         + stats["expired"] + stats["misses"])
        rows.append({
            "lease_s": secs,
            "fastpath_hit_pct": 100.0 * stats["successful_hits"]
            / max(1, total_lookups),
            "expired_lookups": stats["expired"],
            "retired_pending": pending,
            "live_extents": live,
        })
    return rows


def ablation_value_size(sizes: Sequence[int] = (32, 256, 1024, 4096, 65536),
                        n_clients: int = 20,
                        ops_per_client: int = 120) -> list[dict]:
    """§6: 'HydraDB can efficiently support much larger key-value items'.

    GET throughput/latency across value sizes: small items are op-rate
    bound (server CPU / round trips); large items converge to fabric
    bandwidth.
    """
    rows = []
    for size in sizes:
        buf = max(SimConfig().hydra.conn_buf_bytes, size * 2 + 4096)
        cfg = SimConfig().with_overrides(hydra={"conn_buf_bytes": buf})
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=4, n_client_machines=2)
        cluster.start()
        keys = [f"k{i:06d}".encode() for i in range(64)]
        for key in keys:
            cluster.route(key).store_for_key(key).upsert(
                key, bytes(size), Op.PUT)
        lat: list[int] = []
        nbytes = {"n": 0}

        def worker(wid, client):
            import numpy as np
            rng = np.random.default_rng(wid)
            picks = rng.integers(0, len(keys), size=ops_per_client)
            for j in range(ops_per_client):
                t0 = cluster.sim.now
                value = yield from client.get(keys[int(picks[j])])
                lat.append(cluster.sim.now - t0)
                nbytes["n"] += len(value)

        clients = [cluster.client(i % 2) for i in range(n_clients)]
        t0 = cluster.sim.now
        cluster.run(*[worker(i, c) for i, c in enumerate(clients)])
        elapsed = max(1, cluster.sim.now - t0)
        total_ops = n_clients * ops_per_client
        rows.append({
            "value_bytes": size,
            "throughput_kops": total_ops / elapsed * 1e6,
            "goodput_gbps": nbytes["n"] * 8 / elapsed,
            "get_mean_us": sum(lat) / len(lat) / 1000.0,
        })
    return rows


def inflight_sweep(scale: float = 1.0,
                   windows: Sequence[int] = (1, 4, 16),
                   value_bytes: int = 32) -> list[dict]:
    """Message-path GET/PUT throughput vs per-connection in-flight window.

    One client machine against one single-threaded shard, remote-pointer
    cache disabled so every operation takes the slotted message path.
    ``window=1`` is the original stop-and-wait client; larger windows keep
    multiple slots in flight per connection via ``get_many``/``put_many``,
    amortizing polling and doorbells — the speedup column is the headline
    number (BENCH_inflight.json records it across PRs).
    """
    n_ops = max(240, int(BASE_OPS * scale))
    keys = [f"k{i:06d}".encode() for i in range(256)]
    rows: list[dict] = []
    base_get = base_put = None
    for window in windows:
        cfg = SimConfig().with_overrides(
            hydra={"msg_slots_per_conn": window},
            client={"max_inflight_per_conn": window,
                    "rptr_cache_enabled": False},
        )
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1, n_client_machines=1)
        for key in keys:
            cluster.route(key).store_for_key(key).upsert(
                key, b"v" * value_bytes, Op.PUT)
        cluster.start()
        client = cluster.client()
        batch = max(1, window) * 4
        elapsed: dict[str, int] = {}

        def app():
            pairs = [(keys[j % len(keys)], b"w" * value_bytes)
                     for j in range(n_ops)]
            t0 = cluster.sim.now
            for s in range(0, n_ops, batch):
                yield from client.put_many(pairs[s:s + batch])
            elapsed["put"] = cluster.sim.now - t0
            gets = [keys[j % len(keys)] for j in range(n_ops)]
            t0 = cluster.sim.now
            for s in range(0, n_ops, batch):
                yield from client.get_many(gets[s:s + batch])
            elapsed["get"] = cluster.sim.now - t0

        cluster.run(app())
        get_kops = n_ops / elapsed["get"] * 1e6
        put_kops = n_ops / elapsed["put"] * 1e6
        if base_get is None:
            base_get, base_put = get_kops, put_kops
        rows.append({
            "window": window,
            "get_kops": get_kops,
            "put_kops": put_kops,
            "get_speedup": get_kops / base_get,
            "put_speedup": put_kops / base_put,
        })
    return rows


def write_inflight_artifact(rows: list[dict],
                            path: str = "BENCH_inflight.json") -> str:
    """Dump the inflight sweep as a machine-readable perf artifact."""
    payload = {
        "experiment": "inflight_depth_sweep",
        "description": "message-path ops/s vs per-connection in-flight "
                       "window (1 shard, 1 client, rptr cache off)",
        "unit": "kops",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def multiget_sweep(scale: float = 1.0,
                   batch_sizes: Sequence[int] = (4, 16, 64),
                   value_bytes: int = 64) -> list[dict]:
    """``get_many`` throughput: message path vs batched one-sided Reads.

    One client machine against one single-threaded shard, five regimes
    per batch size:

    * ``message`` — pointer cache disabled; the pipelined slotted message
      path carries every key (the PR-1 baseline).
    * ``hybrid`` — the hybrid engine with a warm pointer cache (100% hit
      rate): every batch becomes doorbell-coalesced RDMA Reads and never
      touches the server CPU.
    * ``mixed`` — half the pointers are dropped before each batch
      (modeling out-of-band updates) with index traversal *off*: misses
      demote to one overlapped message batch whose responses re-prime
      the cache (the legacy demotion semantics).
    * ``cold`` — every pointer is dropped before each batch and the
      client walks the exported index buckets instead: 0% hit rate, yet
      every key resolves through pipelined one-sided bucket + item Reads
      with near-zero server CPU.
    * ``mixed-hit`` — half the pointers dropped with traversal *on*:
      hits go straight to item Reads, misses take the bucket walk, all
      sharing one doorbell-coalesced read engine.

    Rows carry the remote-pointer reconciliation columns — every usable
    pointer a batch lookup returns (``pointer_hits``) must come back as
    exactly one successful or invalid Read (``reconciled``) — plus the
    traversal counters (``bucket_reads``, ``traversal_races``,
    ``demotions``, ``index_mutations_versioned``) and the measured
    ``server_cpu_ns_per_get``.  BENCH_multiget.json records the sweep
    across PRs; the headlines are the warm-cache ``hybrid`` speedup over
    ``message`` at batch 16, and ``cold`` beating ``message`` at 0% hit
    rate without touching the server CPU.
    """
    n_ops = max(240, int(BASE_OPS * scale))
    keys = [f"mg{i:06d}".encode() for i in range(256)]
    trav_counters = ("client.bucket_reads", "client.traversal_races",
                     "client.demotions")
    rows: list[dict] = []
    for batch in batch_sizes:
        message_kops: Optional[float] = None
        for mode in ("message", "hybrid", "mixed", "cold", "mixed-hit"):
            traversal = mode in ("cold", "mixed-hit")
            cfg = SimConfig().with_overrides(
                hydra={"msg_slots_per_conn": batch},
                client={"max_inflight_per_conn": batch,
                        "max_inflight_reads": batch,
                        "rptr_cache_enabled": mode != "message",
                        "rptr_sharing": False},
                traversal={"enabled": traversal, "min_fanout": 1},
            )
            cluster = HydraCluster(config=cfg, n_server_machines=1,
                                   shards_per_server=1, n_client_machines=1)
            cluster.start()
            client = cluster.client()
            shard = cluster.shards()[0]
            counters = cluster.metrics.counter
            elapsed: dict[str, int] = {}

            stats0: dict[str, int] = {}
            snap0: dict[str, float] = {}

            def busy_ns():
                # Cores exist from t=0, so the busy-time integral is just
                # the time-average utilization scaled by elapsed sim time.
                return shard.core.busy.time_average() * cluster.sim.now

            def app():
                # Populate through the request path so every PUT also
                # exercises (and counts) the exported-index versioning.
                for s in range(0, len(keys), batch):
                    yield from client.put_many(
                        [(k, b"v" * value_bytes)
                         for k in keys[s:s + batch]])
                if client.cache is not None:
                    # Warm the pointer cache through the message path.
                    for s in range(0, len(keys), batch):
                        yield from client.get_many(keys[s:s + batch])
                    stats0.update(client.cache.stats())
                snap0["busy"] = busy_ns()
                for name in trav_counters:
                    snap0[name] = counters(name).value
                t0 = cluster.sim.now
                done = 0
                while done < n_ops:
                    chunk = [keys[(done + j) % len(keys)]
                             for j in range(min(batch, n_ops - done))]
                    if mode in ("mixed", "mixed-hit"):
                        # Out-of-band updates invalidated half the batch.
                        for key in chunk[::2]:
                            client.cache.invalidate(key)
                    elif mode == "cold":
                        for key in chunk:
                            client.cache.invalidate(key)
                    values = yield from client.get_many(chunk)
                    assert all(v is not None for v in values)
                    done += len(chunk)
                elapsed["get"] = cluster.sim.now - t0
                elapsed["busy"] = busy_ns() - snap0["busy"]

            cluster.run(app())
            row = {
                "mode": mode,
                "batch": batch,
                "get_kops": n_ops / elapsed["get"] * 1e6,
                "server_cpu_ns_per_get": elapsed["busy"] / n_ops,
                "bucket_reads": counters("client.bucket_reads").value
                - snap0["client.bucket_reads"],
                "traversal_races": counters("client.traversal_races").value
                - snap0["client.traversal_races"],
                "demotions": counters("client.demotions").value
                - snap0["client.demotions"],
                "index_mutations_versioned": counters(
                    "shard.index_mutations_versioned").value,
            }
            if message_kops is None:
                message_kops = row["get_kops"]
            row["speedup_vs_message"] = row["get_kops"] / message_kops
            if client.cache is not None:
                stats1 = client.cache.stats()
                d = {k: stats1[k] - stats0[k] for k in stats0}
                attempted = d["successful_hits"] + d["invalid_hits"]
                row.update({
                    "pointer_hits": d["batch_hits"],
                    "successful_hits": d["successful_hits"],
                    "invalid_hits": d["invalid_hits"],
                    "demoted": d["batch_keys"] - d["batch_hits"]
                    + d["invalid_hits"],
                    "reconciled": attempted == d["batch_hits"],
                })
            else:
                row.update({"pointer_hits": 0, "successful_hits": 0,
                            "invalid_hits": 0, "demoted": n_ops,
                            "reconciled": True})
            rows.append(row)
    return rows


def write_multiget_artifact(rows: list[dict],
                            path: str = "BENCH_multiget.json") -> str:
    """Dump the multiget sweep as a machine-readable perf artifact."""
    payload = {
        "experiment": "multiget_fanout_sweep",
        "description": "get_many ops/s: pipelined message path vs the "
                       "hybrid doorbell-coalesced Read fan-out (warm "
                       "cache) vs legacy half-invalidated demotion vs "
                       "one-sided index traversal at 0% (cold) and 50% "
                       "(mixed-hit) hit rates (1 shard, 1 client, "
                       "hit-rate x batch-size)",
        "unit": "kops",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def ablation_ack_interval(intervals: Sequence[int] = (1, 8, 32, 128),
                          inserts: int = 200) -> list[dict]:
    """How relaxed acknowledgements amortize replication cost (§5.2)."""
    rows = []
    for interval in intervals:
        cfg = SimConfig().with_overrides(
            replication={"replicas": 1, "ack_interval": interval})
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1, n_client_machines=1)
        cluster.start()
        client = cluster.client()
        lat = []

        def app():
            for i in range(inserts):
                t0 = cluster.sim.now
                yield from client.insert(f"key-{i:08d}".encode(), b"v" * 32)
                lat.append(cluster.sim.now - t0)

        cluster.run(app())
        rows.append({
            "ack_interval": interval,
            "avg_insert_us": sum(lat) / len(lat) / 1000.0,
            "ack_requests": cluster.metrics.counter(
                "repl.ack_requests").value,
        })
    return rows


def failover_availability(scale: float = 1.0,
                          client_counts: Sequence[int] = (2, 4),
                          n_keys: int = 256,
                          value_bytes: int = 64) -> list[dict]:
    """Availability under primary failure — the paper's §5 claim.

    A paced 50/50 GET/PUT workload runs against one replicated shard;
    mid-run the primary's server is killed.  With the default client
    deadline budget every operation replays across the SWAT promotion,
    so the run must complete with **zero client-visible exceptions** and
    **zero lost acked writes**.  Reported per client count:

    * ``blackout_ms`` — the longest gap between consecutive completed
      operations once the kill lands (detection + promotion + replay);
    * ``pre_kops`` / ``post_kops`` — acked throughput in equal windows
      immediately before the kill and at the tail of the run, and their
      ratio ``recovered_ratio`` (the headline: >= 0.8 required).

    Coordination timeouts are shrunk (50 ms heartbeats, 200 ms sessions)
    so detection dominates neither the simulation nor the blackout the
    way the production 2 s session would; the shape, not the absolute
    window, is the reproduction target.
    """
    think_ns = max(20_000, int(100_000 / max(scale, 1e-3)))
    kill_at = 150 * _MS
    end_at = 800 * _MS
    window_ns = 100 * _MS  # pre/post throughput measurement windows
    rows: list[dict] = []
    for n_clients in client_counts:
        cfg = SimConfig().with_overrides(
            replication={"replicas": 1},
            coord={"heartbeat_ns": 50 * _MS,
                   "session_timeout_ns": 200 * _MS},
            client={"op_timeout_ns": 5 * _MS},
        )
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1, n_client_machines=2)
        cluster.enable_ha()
        cluster.start()
        sim = cluster.sim
        keys = [f"fk{i:06d}".encode() for i in range(n_keys)]
        acked: dict[bytes, bytes] = {}
        completions: list[int] = []
        exceptions = [0]

        def preload(client=None):
            client = cluster.client()
            for key in keys:
                yield from client.put(key, b"v" * value_bytes)

        cluster.run(preload())

        def worker(cid, client):
            i = 0
            while sim.now < end_at:
                yield sim.timeout(think_ns)
                key = keys[(i * 7 + cid * 13) % n_keys]
                try:
                    if i % 2 == 0:
                        value = f"c{cid}-{i}".encode()
                        status = yield from client.put(key, value)
                        if status is Status.OK:
                            acked[key] = value
                    else:
                        yield from client.get(key)
                except Exception:  # noqa: BLE001 - counted, not raised
                    exceptions[0] += 1
                completions.append(sim.now)
                i += 1

        def killer():
            yield sim.timeout(kill_at)
            cluster.servers[0].kill()

        clients = [cluster.client(c % 2) for c in range(n_clients)]
        sim.process(killer())
        cluster.run(*[worker(c, cl) for c, cl in enumerate(clients)])

        completions.sort()
        pre = [t for t in completions if kill_at - window_ns <= t < kill_at]
        post = [t for t in completions if t >= end_at - window_ns]
        after_kill = [kill_at] + [t for t in completions if t >= kill_at]
        blackout = max(b - a for a, b in zip(after_kill, after_kill[1:]))
        shard_id = cluster.routing.shard_ids()[0]
        survivor = cluster.routing.resolve(shard_id).store.dump()
        lost = sum(1 for k, v in acked.items() if survivor.get(k) != v)
        pre_kops = len(pre) / window_ns * 1e6
        post_kops = len(post) / window_ns * 1e6
        tally = cluster.metrics.tally("client.failover_latency_ns")
        rows.append({
            "clients": n_clients,
            "ops": len(completions),
            "pre_kops": pre_kops,
            "post_kops": post_kops,
            "recovered_ratio": post_kops / pre_kops if pre_kops else 0.0,
            "blackout_ms": blackout / 1e6,
            "failovers": cluster.metrics.counter("swat.failovers").value,
            "client_retries": cluster.metrics.counter(
                "client.retries").value,
            "client_failovers": cluster.metrics.counter(
                "client.failovers").value,
            "failover_latency_ms": (tally.mean / 1e6
                                    if tally.count else 0.0),
            "exceptions": exceptions[0],
            "lost_acked_writes": lost,
        })
    return rows


def write_failover_artifact(rows: list[dict],
                            path: str = "BENCH_failover.json") -> str:
    """Dump the availability experiment as a machine-readable artifact."""
    payload = {
        "experiment": "failover_availability",
        "description": "paced 50/50 GET/PUT with a primary kill mid-run: "
                       "blackout window, recovered throughput, and the "
                       "zero-exception / zero-lost-acked-write contract "
                       "(1 replicated shard, 200 ms ZK sessions)",
        "unit": "kops / ms",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def recovery_dualfail(scale: float = 1.0,
                      ack_modes: Sequence[str] = ("ack_on_replicate",
                                                  "ack_on_flush"),
                      n_clients: int = 4, n_keys: int = 192,
                      value_bytes: int = 64) -> list[dict]:
    """Full-crash recovery from the durable log — the dual-failure claim.

    A paced 50/50 GET/PUT workload runs against one shard with a single
    secondary *and* the durable write-behind log enabled; mid-run the
    primary's server and its secondary die together (NIC down too), so
    the replication ring cannot cover the failure and SWAT's
    no-candidate branch must rebuild the shard by replaying the PM log.
    One row per ack mode:

    * ``ack_on_flush`` — an ack means the write is group-committed to
      the log, so the run must finish with **zero lost acked writes**
      (the hard CI gate) and typed errors only;
    * ``ack_on_replicate`` — the contrast row: acks return off the
      replication post, so writes acked inside the last unflushed
      group-commit window may die with both copies.  ``lost_acked_writes``
      bounds that window (<= one group commit of records).

    Also reported: the blackout window, recovered throughput ratio,
    records replayed, and replay throughput (records/ms of recovery
    wall-clock).
    """
    from ..core.errors import HydraError, RecoveryInProgress

    think_ns = max(20_000, int(100_000 / max(scale, 1e-3)))
    kill_at = 150 * _MS
    end_at = 900 * _MS
    window_ns = 100 * _MS
    rows: list[dict] = []
    for ack_mode in ack_modes:
        cfg = SimConfig().with_overrides(
            replication={"replicas": 1},
            durability={"enabled": True, "ack_mode": ack_mode},
            coord={"heartbeat_ns": 50 * _MS,
                   "session_timeout_ns": 200 * _MS},
            client={"op_timeout_ns": 5 * _MS},
        )
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1, n_client_machines=2)
        cluster.enable_ha()
        cluster.start()
        sim = cluster.sim
        keys = [f"rk{i:06d}".encode() for i in range(n_keys)]
        acked: dict[bytes, bytes] = {}
        completions: list[int] = []
        stats = {"typed": 0, "untyped": 0, "recovery_errors": 0}

        def preload():
            client = cluster.client()
            for key in keys:
                yield from client.put(key, b"v" * value_bytes)

        cluster.run(preload())

        def worker(cid, client):
            i = 0
            while sim.now < end_at:
                yield sim.timeout(think_ns)
                key = keys[(i * 7 + cid * 13) % n_keys]
                try:
                    if i % 2 == 0:
                        value = f"c{cid}-{i}".encode()
                        status = yield from client.put(key, value)
                        if status is Status.OK:
                            acked[key] = value
                    else:
                        yield from client.get(key)
                except RecoveryInProgress:
                    stats["typed"] += 1
                    stats["recovery_errors"] += 1
                except HydraError:
                    stats["typed"] += 1
                except Exception:  # noqa: BLE001 - counted, not raised
                    stats["untyped"] += 1
                completions.append(sim.now)
                i += 1

        def killer():
            yield sim.timeout(kill_at)
            server = cluster.servers[0]
            sids = [sh.shard_id for sh in server.shards]
            server.kill()
            # The correlated half: every covering secondary dies with
            # its NIC, so the ring cannot seed a promotion.
            for sid in sids:
                for sec in cluster.secondaries.get(sid, []):
                    if not sec.failing:
                        sec.kill()
                    if sec.machine.nic.alive:
                        sec.machine.nic.fail()

        clients = [cluster.client(c % 2) for c in range(n_clients)]
        sim.process(killer())
        cluster.run(*[worker(c, cl) for c, cl in enumerate(clients)])

        completions.sort()
        pre = [t for t in completions if kill_at - window_ns <= t < kill_at]
        post = [t for t in completions if t >= end_at - window_ns]
        after_kill = [kill_at] + [t for t in completions if t >= kill_at]
        blackout = max(b - a for a, b in zip(after_kill, after_kill[1:]))
        shard_id = cluster.routing.shard_ids()[0]
        survivor = cluster.routing.resolve(shard_id).store.dump()
        lost = sum(1 for k, v in acked.items() if survivor.get(k) != v)
        pre_kops = len(pre) / window_ns * 1e6
        post_kops = len(post) / window_ns * 1e6
        m = cluster.metrics
        recovery = m.tally("durable.recovery_ns")
        replayed = m.counter("durable.replayed").value
        replay_ms = recovery.mean / 1e6 if recovery.count else 0.0
        rows.append({
            "ack_mode": ack_mode,
            "clients": n_clients,
            "ops": len(completions),
            "acked_writes": len(acked),
            "pre_kops": pre_kops,
            "post_kops": post_kops,
            "recovered_ratio": post_kops / pre_kops if pre_kops else 0.0,
            "blackout_ms": blackout / 1e6,
            "recoveries": m.counter("durable.recoveries").value,
            "replayed_records": replayed,
            "replay_ms": replay_ms,
            "replay_recs_per_ms": (replayed / replay_ms
                                   if replay_ms else 0.0),
            "salvaged_records": m.counter("durable.salvaged").value,
            "log_flushes": m.counter("durable.flushes").value,
            "typed_errors": stats["typed"],
            "recovery_errors": stats["recovery_errors"],
            "untyped_errors": stats["untyped"],
            "lost_acked_writes": lost,
        })
    return rows


def write_recovery_artifact(rows: list[dict],
                            path: str = "BENCH_recovery.json") -> str:
    """Dump the dual-failure recovery experiment as an artifact."""
    payload = {
        "experiment": "recovery_dualfail",
        "description": "paced 50/50 GET/PUT with a correlated primary+"
                       "secondary kill mid-run: SWAT rebuilds the shard "
                       "by replaying the per-shard durable write-behind "
                       "log (torn tail truncated, guardian-validated), "
                       "per ack mode — ack_on_flush must lose zero acked "
                       "writes with typed errors only; ack_on_replicate "
                       "bounds its loss to one group-commit window "
                       "(1 shard, replicas=1, durable log on, 200 ms ZK "
                       "sessions)",
        "unit": "kops / ms",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


#: Ablation grid for the server-side sweep layers (PR 4): each knob is
#: independently toggleable so the bench isolates its contribution.
_SWEEP_MODES: Sequence[tuple[str, dict]] = (
    ("baseline", {"occupancy_word": False, "ready_hints": False,
                  "resp_doorbell_batch": 0}),
    ("occupancy", {"occupancy_word": True, "ready_hints": False,
                   "resp_doorbell_batch": 0}),
    ("ready", {"occupancy_word": False, "ready_hints": True,
               "resp_doorbell_batch": 0}),
    ("resp-batch", {"occupancy_word": False, "ready_hints": False,
                    "resp_doorbell_batch": 16}),
    ("all", {"occupancy_word": True, "ready_hints": True,
             "resp_doorbell_batch": 16}),
)


def server_sweep(scale: float = 1.0,
                 conn_counts: Sequence[int] = (8, 32),
                 window: int = 16,
                 value_bytes: int = 32) -> list[dict]:
    """Server-side sweep scalability: CPU ns/op vs connections x window.

    Many moderately-loaded connections against one single-threaded shard,
    remote-pointer cache disabled so every GET crosses the server CPU.
    Each client issues a small ``get_many`` burst and then thinks, so the
    offered load stays below shard saturation — exactly the regime where
    the seed's linear sweep burns the server core probing conns x slots
    idle buffer slots per wakeup.  Five modes ablate the three layers
    (occupancy word, ready hints, response doorbell batching); the
    headline columns are ``server_cpu_ns_per_op`` and ``cpu_ratio``
    (baseline CPU / mode CPU, higher is better) at >= 32 connections.

    A second, write-heavy pass at the largest connection count replaces
    the ``get_many`` bursts with replicated ``put_many`` bursts
    (``replicas=1``): those rows (``workload == "write"``) surface how
    doorbell batching amortizes replication waits — ``rep_batch_mean``
    is the average number of replication acks awaited per flush, > 1
    whenever batching coalesces them.
    """
    n_rounds = max(4, int(24 * scale))
    burst = 4
    think_ns = 800_000

    def cell(workload, conns, mode, knobs, base_kops, base_cpu):
        hydra = {"msg_slots_per_conn": window}
        hydra.update(knobs)
        overrides = {"hydra": hydra,
                     "client": {"max_inflight_per_conn": window,
                                "rptr_cache_enabled": False}}
        if workload == "write":
            # Strict-mode replication so every mutation returns an ack
            # wait — the regime where batching the waits pays.
            overrides["replication"] = {"replicas": 1, "mode": "strict"}
        cfg = SimConfig().with_overrides(**overrides)
        n_cm = max(1, conns // 8)
        cluster = HydraCluster(config=cfg, n_server_machines=1,
                               shards_per_server=1,
                               n_client_machines=n_cm)
        keys = [f"k{i:06d}".encode() for i in range(256)]
        for key in keys:
            cluster.route(key).store_for_key(key).upsert(
                key, b"v" * value_bytes, Op.PUT)
        cluster.start()
        sim = cluster.sim

        def app(cid, client):
            # Stagger bursts so arrivals stay spread out rather than
            # phase-locking every connection onto the same sweep.
            yield sim.timeout(cid * (think_ns // max(1, conns)))
            for r in range(n_rounds):
                picks = [keys[(cid * 131 + r * 17 + j) % len(keys)]
                         for j in range(burst)]
                if workload == "write":
                    yield from client.put_many(
                        [(k, b"w" * value_bytes) for k in picks])
                else:
                    yield from client.get_many(picks)
                if r != n_rounds - 1:
                    yield sim.timeout(think_ns)

        clients = [cluster.client(i % n_cm) for i in range(conns)]
        t0 = sim.now
        cluster.run(*(app(i, c) for i, c in enumerate(clients)))
        elapsed = max(1, sim.now - t0)
        n_ops = conns * n_rounds * burst
        shard = cluster.shards()[0]
        busy_ns = shard.core.utilization() * sim.now
        kops = n_ops / elapsed * 1e6
        cpu = busy_ns / n_ops
        if base_kops is None:
            base_kops, base_cpu = kops, cpu
        rep = cluster.metrics.tally("shard.rep_batch")
        row = {
            "workload": workload,
            "conns": conns,
            "window": window,
            "mode": mode,
            "kops": kops,
            "speedup": kops / base_kops,
            "server_cpu_ns_per_op": cpu,
            "cpu_ratio": base_cpu / cpu,
            "sweeps": int(cluster.metrics.counter("shard.sweeps").value),
            "probes": int(cluster.metrics.counter("shard.probes").value),
            "resp_doorbells": int(
                cluster.metrics.counter("shard.resp_doorbells").value),
            "rep_batch_mean": rep.mean if rep.count else 0.0,
            "rep_flushes": rep.count,
        }
        return row, base_kops, base_cpu

    rows: list[dict] = []
    for conns in conn_counts:
        base_kops = base_cpu = None
        for mode, knobs in _SWEEP_MODES:
            row, base_kops, base_cpu = cell("read", conns, mode, knobs,
                                            base_kops, base_cpu)
            rows.append(row)
    wconns = max(conn_counts)
    base_kops = base_cpu = None
    for mode, knobs in _SWEEP_MODES:
        if mode not in ("baseline", "resp-batch", "all"):
            continue
        row, base_kops, base_cpu = cell("write", wconns, mode, knobs,
                                        base_kops, base_cpu)
        rows.append(row)
    return rows


def write_sweep_artifact(rows: list[dict],
                         path: str = "BENCH_sweep.json") -> str:
    """Dump the server sweep ablation as a machine-readable artifact."""
    payload = {
        "experiment": "server_sweep",
        "description": "server CPU ns/op and throughput vs connections at "
                       "window 16, ablating occupancy-word probing, "
                       "ready-connection scheduling, and doorbell-batched "
                       "responses against the linear-sweep baseline "
                       "(1 shard, rptr cache off, paced get_many bursts; "
                       "write rows: replicated put_many bursts with "
                       "rep-ack batching stats)",
        "unit": "kops / ns-per-op",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def chaos_soak(scale: float = 1.0) -> list[dict]:
    """Chaos soak: seeded fault storms vs the resilience contract.

    Thin wrapper over :func:`repro.chaos.harness.chaos_soak` — one row
    per ``(profile, seed)`` storm cell (torn-write, gray-failure,
    ZK-expiry, QP-flap, mixed crash, and stale-pointer storms), each
    reporting the acked-write / corrupt-value / typed-error / deadline
    invariants plus availability numbers, with a same-seed rerun proving
    determinism.
    """
    from ..chaos.harness import chaos_soak as _soak
    return _soak(scale=scale)


def write_chaos_artifact(rows: list[dict],
                         path: str = "BENCH_chaos.json") -> str:
    """Dump the chaos soak as a machine-readable artifact."""
    payload = {
        "experiment": "chaos_soak",
        "description": "mixed GET/PUT/DELETE workload under seeded fault "
                       "storms (torn writes, gray failure, ZK session "
                       "expiry, QP flaps, crash+replication faults, "
                       "stale-pointer read delays, tenant contention, "
                       "correlated dual failure vs the durable log) plus "
                       "a server-variant matrix (sub-sharded, pipelined, "
                       "replicas=2): zero lost acked writes, zero "
                       "corrupt values, typed bounded errors, post-storm "
                       "recovery, and same-seed replayability "
                       "(2 shards, HA on)",
        "unit": "kops / ms",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
