"""Validate emitted bench artifacts: ``python -m repro.bench.validate F...``.

The bench harness writes machine-readable perf artifacts
(``BENCH_inflight.json``, ``BENCH_multiget.json``,
``BENCH_failover.json``, ``BENCH_recovery.json``, ``BENCH_sweep.json``,
``BENCH_chaos.json``, ``BENCH_simcore.json``, ``BENCH_tenants.json``,
``BENCH_scale.json``) that are tracked
across PRs and consumed by CI's ``bench-smoke`` job.  This module checks
that each file matches its experiment's schema — required top-level
fields, per-row keys and types — plus the semantic invariants the
experiments promise:

* every sweep carries at least one baseline row with speedup 1.0;
* throughputs and speedups are strictly positive finite numbers;
* multiget rows must have ``reconciled`` == True — the remote-pointer
  accounting (``successful_hits + invalid_hits == batch_hits``) balanced
  for every mode/batch cell; the ``cold`` (0% hit rate) cells must show
  one-sided index traversal beating the message path with near-zero
  server CPU ns/GET;
* failover rows must show the availability contract held: zero
  client-visible exceptions, zero lost acked writes, at least one SWAT
  promotion, and post-kill throughput >= 80% of pre-kill;
* server_sweep read rows must carry a linear-sweep baseline (speedup and
  cpu_ratio == 1.0) and, at >= 32 connections, the all-layers mode must
  beat it by >= 2x in throughput or server CPU ns/op; write rows in the
  all-layers mode must show replication-ack batching (rep_batch_mean
  > 1);
* chaos_soak rows must show the resilience contract held under every
  storm: zero lost acked writes, zero corrupt values, zero untyped
  errors, zero deadline violations, convergence and recovered_ratio
  >= 0.8 post-storm, with torn/gray/zk/stale/tenant/dualfail profiles
  all present, the server-variant matrix covered (sub-sharded and
  pipelined cells plus a replicas >= 2 cell), the dualfail cell
  recovering through the durable log (log_recoveries >= 1), and the
  same-seed rerun flagged deterministic;
* recovery_dualfail rows must show the durability contract held per ack
  mode: at least one durable-log recovery, recovered throughput >= 80%
  of pre-kill, a bounded blackout, zero untyped errors everywhere, and
  — hard-required for the ``ack_on_flush`` row — zero lost acked
  writes;
* simcore_kernel rows must carry digest_match == True (the batched and
  legacy kernels dispatched bit-identically on the traced run), a
  legacy baseline at speedup 1.0 per bench, the batched sweep_loop
  row must stay at or above the 3x regression floor, and full-scale
  rows must clear an absolute events/sec floor;
* scale_matrix rows must carry digest_match == True (the flat-array
  and seed stacks dispatched bit-identically on the traced clone) plus
  exactly equal event counts at full scale, a 64-server scale-out row,
  per-axis normalized baselines of 1.0, and full-size cells at or above
  the flat-vs-seed no-regression wall-clock floor;
* tenant_fairness rows must show the QoS contract held: Jain's index
  >= 0.9 and victim p99 <= 2x the no-aggressor baseline in every
  fair-queueing cell, client throttles tripping in the admission-capped
  cell, server sheds in the occupancy-capped cell, and the AIMD
  autotune cell within 10% of the best static window.

Exit status is 0 only if every named file validates; problems are listed
one per line as ``<file>: <complaint>``.
"""

from __future__ import annotations

import json
import math
import sys

__all__ = ["validate_artifact", "main"]

_TOP_KEYS = ("experiment", "description", "unit", "rows")

#: experiment name -> required row keys (and the checks below).
_ROW_KEYS: dict[str, tuple[str, ...]] = {
    "inflight_depth_sweep": (
        "window", "get_kops", "put_kops", "get_speedup", "put_speedup"),
    "multiget_fanout_sweep": (
        "mode", "batch", "get_kops", "speedup_vs_message", "pointer_hits",
        "successful_hits", "invalid_hits", "demoted", "reconciled",
        "bucket_reads", "traversal_races", "demotions",
        "index_mutations_versioned", "server_cpu_ns_per_get"),
    "failover_availability": (
        "clients", "pre_kops", "post_kops", "recovered_ratio",
        "blackout_ms", "failovers", "client_retries", "exceptions",
        "lost_acked_writes"),
    "server_sweep": (
        "conns", "window", "mode", "kops", "speedup",
        "server_cpu_ns_per_op", "cpu_ratio", "sweeps", "probes",
        "resp_doorbells"),
    "chaos_soak": (
        "profile", "seed", "variant", "replicas", "ops", "errors",
        "error_rate", "untyped_errors", "corrupt_values",
        "lost_acked_writes", "deadline_violations", "pre_kops",
        "post_kops", "recovered_ratio", "p99_ms", "blackout_ms",
        "failovers", "log_recoveries", "lease_skew_hazards",
        "injected_faults", "schedule_hash", "converged"),
    "recovery_dualfail": (
        "ack_mode", "clients", "ops", "acked_writes", "pre_kops",
        "post_kops", "recovered_ratio", "blackout_ms", "recoveries",
        "replayed_records", "replay_recs_per_ms", "typed_errors",
        "untyped_errors", "lost_acked_writes"),
    "simcore_kernel": (
        "bench", "kernel", "events", "wall_s", "events_per_sec",
        "speedup", "digest_match", "now_rate", "wheel_rate",
        "heap_rate", "timer_reuse_rate", "peak_calendar"),
    "tenant_fairness": (
        "cell", "kops", "victim_kops", "victim_p99_us", "jain",
        "throttled", "shed", "solo_p99_us", "best_static_kops"),
    "scale_matrix": (
        "axis", "servers", "shards", "clients", "ops", "throughput_mops",
        "normalized", "wall_s", "seed_wall_s", "events", "seed_events",
        "events_per_sec", "speedup", "digest_match"),
}

#: Regression floor for the kernel microbench: the batched kernel must
#: beat the seed heapq kernel by at least this much on the sweep-loop
#: shape (the committed artifact shows ~5x; the floor leaves headroom
#: for CI machine noise without letting a real regression slip by).
_SIMCORE_SWEEP_FLOOR = 3.0

#: Absolute events/sec floor for full-scale simcore rows (events >=
#: 100k): the committed artifact shows 0.5-3.4M events/sec; a drop below
#: this order-of-magnitude guard means the kernel itself regressed
#: catastrophically, not that the CI machine is slow.
_SIMCORE_EPS_FLOOR = 150_000.0

#: Wall-clock floor for the scale matrix's full-size cells: the default
#: stack (flat hot paths + calendar kernel) must never be slower than
#: the seed stack (scalar paths + heapq kernel).  The measured compound
#: speedup on the 64-server x 2048-client shape is ~1.05-1.2x, far below
#: the kernel microbench's 5x, because digest identity pins the event
#: chain: both stacks dispatch the identical ~42 events per op, so only
#: the Python-level cost per event differs (Amdahl's law over the
#: flag-gated ~10-15% of wall time).  The floor is set just under 1.0 to
#: absorb timer noise while catching a real inversion.
_SCALE_SPEEDUP_FLOOR = 0.9

#: chaos_soak row fields that must be exactly zero for the contract.
_CHAOS_ZERO = ("untyped_errors", "corrupt_values", "lost_acked_writes",
               "deadline_violations")

#: storm profiles the acceptance criteria require in every artifact.
_CHAOS_REQUIRED_PROFILES = ("torn", "gray", "zk", "stale", "tenant",
                            "dualfail")

#: blackout ceiling for the recovery bench (ms): detection is bounded by
#: the 200 ms ZK session, then promotion + log replay + client route
#: replay must land well inside the rest of this budget.
_RECOVERY_BLACKOUT_MS = 500.0


def _positive(row: dict, key: str) -> bool:
    value = row.get(key)
    return (isinstance(value, (int, float)) and not isinstance(value, bool)
            and math.isfinite(value) and value > 0)


def validate_artifact(payload: dict) -> list[str]:
    """All schema/semantic complaints for one parsed artifact (empty = ok)."""
    problems: list[str] = []
    for key in _TOP_KEYS:
        if key not in payload:
            problems.append(f"missing top-level field {key!r}")
    experiment = payload.get("experiment")
    row_keys = _ROW_KEYS.get(experiment)
    if row_keys is None:
        problems.append(f"unknown experiment {experiment!r} "
                        f"(expected one of {sorted(_ROW_KEYS)})")
        return problems
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        missing = [k for k in row_keys if k not in row]
        if missing:
            problems.append(f"row {i}: missing {', '.join(missing)}")
            continue
        for key in row_keys:
            if key.endswith("_kops") or key.endswith("speedup") \
                    or key == "speedup_vs_message" \
                    or key in ("kops", "server_cpu_ns_per_op", "cpu_ratio",
                               "throughput_mops", "wall_s", "seed_wall_s",
                               "events_per_sec"):
                if not _positive(row, key):
                    problems.append(f"row {i}: {key} must be a positive "
                                    f"number, got {row[key]!r}")
    if experiment == "inflight_depth_sweep":
        if not any(row.get("get_speedup") == 1.0 for row in rows):
            problems.append("no baseline row with get_speedup == 1.0")
    if experiment == "multiget_fanout_sweep":
        if not any(row.get("mode") == "message" for row in rows):
            problems.append("no message-path baseline rows")
        if not any(row.get("mode") == "cold" for row in rows):
            problems.append("no cold-cache (one-sided traversal) rows")
        for i, row in enumerate(rows):
            if row.get("reconciled") is not True:
                problems.append(f"row {i} (mode={row.get('mode')!r}, "
                                f"batch={row.get('batch')!r}): pointer "
                                f"accounting did not reconcile")
        message_cpu = {row.get("batch"): row.get("server_cpu_ns_per_get")
                       for row in rows if row.get("mode") == "message"}
        for i, row in enumerate(rows):
            if row.get("mode") != "cold":
                continue
            label = f"row {i} (cold, batch={row.get('batch')!r})"
            speedup = row.get("speedup_vs_message")
            if isinstance(row.get("batch"), int) and row["batch"] >= 16 \
                    and not (isinstance(speedup, (int, float))
                             and speedup > 1.0):
                # Two dependent RTTs only amortize once the bucket and
                # item Reads pipeline across a real fan-out.
                problems.append(
                    f"{label}: one-sided traversal must beat the message "
                    f"path at 0% hit rate, got speedup "
                    f"{speedup!r}")
            if not _positive(row, "bucket_reads"):
                problems.append(f"{label}: traversal ran but bucket_reads "
                                f"is {row.get('bucket_reads')!r}")
            cpu = row.get("server_cpu_ns_per_get")
            baseline = message_cpu.get(row.get("batch"))
            if not (isinstance(cpu, (int, float)) and math.isfinite(cpu)
                    and isinstance(baseline, (int, float)) and baseline > 0
                    and cpu <= 0.05 * baseline):
                problems.append(
                    f"{label}: cold GETs must burn near-zero server CPU "
                    f"(<= 5% of the message path's), got {cpu!r} vs "
                    f"baseline {baseline!r}")
    if experiment == "server_sweep":
        if not any(row.get("mode") == "baseline" and row.get("speedup") == 1.0
                   and row.get("cpu_ratio") == 1.0 for row in rows):
            problems.append("no linear-sweep baseline row with speedup and "
                            "cpu_ratio == 1.0")
        for i, row in enumerate(rows):
            if row.get("mode") != "all" or row.get("conns", 0) < 32:
                continue
            if row.get("workload", "read") == "write":
                # Write-heavy rows promise replication-ack batching, not
                # the read-path CPU headline.
                rep = row.get("rep_batch_mean")
                if not (isinstance(rep, (int, float)) and rep > 1.0):
                    problems.append(
                        f"row {i} (write, conns={row.get('conns')!r}): "
                        f"all-layers mode must batch replication acks "
                        f"(rep_batch_mean > 1), got {rep!r}")
                continue
            speedup, ratio = row.get("speedup"), row.get("cpu_ratio")
            if not ((isinstance(speedup, (int, float)) and speedup >= 2.0)
                    or (isinstance(ratio, (int, float)) and ratio >= 2.0)):
                problems.append(
                    f"row {i} (conns={row.get('conns')!r}): all-layers mode "
                    f"must show >= 2x throughput or >= 2x lower server CPU "
                    f"per op vs the linear sweep, got speedup={speedup!r} "
                    f"cpu_ratio={ratio!r}")
    if experiment == "chaos_soak":
        profiles = {row.get("profile") for row in rows}
        missing = [p for p in _CHAOS_REQUIRED_PROFILES if p not in profiles]
        if missing:
            problems.append(f"missing required storm profiles: "
                            f"{', '.join(missing)}")
        if len(rows) < 5:
            problems.append(f"need >= 5 seeded storm cells, got {len(rows)}")
        if not any(row.get("deterministic") is True for row in rows):
            problems.append("no row carries the deterministic == True "
                            "same-seed replay proof")
        variants = {row.get("variant") for row in rows}
        for variant in ("subshard", "pipelined"):
            if variant not in variants:
                problems.append(f"storm matrix missing a {variant!r} "
                                f"server-variant cell")
        if not any(isinstance(row.get("replicas"), int)
                   and row["replicas"] >= 2 for row in rows):
            problems.append("storm matrix missing a replicas >= 2 cell")
        for i, row in enumerate(rows):
            label = f"row {i} (profile={row.get('profile')!r})"
            for key in _CHAOS_ZERO:
                if row.get(key) != 0:
                    problems.append(f"{label}: {key} must be 0, "
                                    f"got {row.get(key)!r}")
            if row.get("converged") is not True:
                problems.append(f"{label}: workload did not converge "
                                f"post-storm")
            if row.get("profile") == "dualfail" \
                    and not (isinstance(row.get("log_recoveries"), int)
                             and row["log_recoveries"] >= 1):
                problems.append(
                    f"{label}: the correlated storm must recover through "
                    f"the durable log (log_recoveries >= 1), got "
                    f"{row.get('log_recoveries')!r}")
            if "deterministic" in row and row["deterministic"] is not True:
                problems.append(f"{label}: same-seed rerun diverged")
            ratio = row.get("recovered_ratio")
            if not (isinstance(ratio, (int, float))
                    and math.isfinite(ratio) and ratio >= 0.8):
                problems.append(f"{label}: recovered_ratio must be >= 0.8, "
                                f"got {ratio!r}")
    if experiment == "simcore_kernel":
        benches = {row.get("bench") for row in rows}
        for bench in ("sweep_loop", "wake_storm", "mixed_calendar"):
            if bench not in benches:
                problems.append(f"missing bench {bench!r}")
        for i, row in enumerate(rows):
            label = f"row {i} (bench={row.get('bench')!r}, " \
                    f"kernel={row.get('kernel')!r})"
            if row.get("digest_match") is not True:
                problems.append(
                    f"{label}: schedule digests diverged between kernels "
                    f"— the speedup is meaningless without bit-identical "
                    f"dispatch order")
            if row.get("kernel") == "legacy" and row.get("speedup") != 1.0:
                problems.append(f"{label}: legacy baseline must have "
                                f"speedup == 1.0, got {row.get('speedup')!r}")
            if not _positive(row, "events"):
                problems.append(f"{label}: events must be positive, "
                                f"got {row.get('events')!r}")
            if not _positive(row, "events_per_sec"):
                problems.append(f"{label}: events_per_sec must be positive, "
                                f"got {row.get('events_per_sec')!r}")
            if isinstance(row.get("events"), int) \
                    and row["events"] >= 100_000:
                eps = row.get("events_per_sec")
                if not (isinstance(eps, (int, float))
                        and eps >= _SIMCORE_EPS_FLOOR):
                    problems.append(
                        f"{label}: events/sec regressed below the absolute "
                        f"{_SIMCORE_EPS_FLOOR:.0f}/s floor, got {eps!r}")
        for i, row in enumerate(rows):
            if row.get("bench") != "sweep_loop" \
                    or row.get("kernel") != "batched":
                continue
            if not isinstance(row.get("events"), int) \
                    or row["events"] < 100_000:
                # Smoke-scale cells are too short to time reliably; the
                # floor binds on the full-scale bench-simcore artifact.
                continue
            speedup = row.get("speedup")
            if not (isinstance(speedup, (int, float))
                    and speedup >= _SIMCORE_SWEEP_FLOOR):
                problems.append(
                    f"row {i} (sweep_loop, batched): kernel speedup "
                    f"regressed below the {_SIMCORE_SWEEP_FLOOR}x floor, "
                    f"got {speedup!r}")
    if experiment == "scale_matrix":
        axes = {row.get("axis") for row in rows}
        for axis in ("scale_out", "scale_up"):
            if axis not in axes:
                problems.append(f"missing axis {axis!r}")
        if not any(row.get("axis") == "scale_out"
                   and row.get("servers") == 64 for row in rows):
            problems.append("no 64-server scale-out row (the headline "
                            "shape)")
        seen_axis: set = set()
        for i, row in enumerate(rows):
            label = f"row {i} (axis={row.get('axis')!r}, " \
                    f"servers={row.get('servers')!r}, " \
                    f"shards={row.get('shards')!r})"
            if row.get("digest_match") is not True:
                problems.append(
                    f"{label}: schedule digests diverged between the flat "
                    f"and seed stacks — the speedup is meaningless without "
                    f"bit-identical dispatch order")
            if row.get("events") != row.get("seed_events") \
                    or not _positive(row, "events"):
                problems.append(
                    f"{label}: both stacks must dispatch the same positive "
                    f"event count at full scale, got events="
                    f"{row.get('events')!r} vs seed_events="
                    f"{row.get('seed_events')!r}")
            axis = row.get("axis")
            if axis not in seen_axis:
                seen_axis.add(axis)
                if row.get("normalized") != 1.0:
                    problems.append(
                        f"{label}: each axis's first row is its own "
                        f"baseline and must have normalized == 1.0, got "
                        f"{row.get('normalized')!r}")
            elif not _positive(row, "normalized"):
                problems.append(f"{label}: normalized must be a positive "
                                f"number, got {row.get('normalized')!r}")
            if isinstance(row.get("events"), int) \
                    and row["events"] >= 100_000:
                # Smoke-scale cells are too short to time reliably.
                speedup = row.get("speedup")
                if not (isinstance(speedup, (int, float))
                        and speedup >= _SCALE_SPEEDUP_FLOOR):
                    problems.append(
                        f"{label}: flat-stack speedup fell below the "
                        f"{_SCALE_SPEEDUP_FLOOR}x no-regression floor, "
                        f"got {speedup!r}")
    if experiment == "tenant_fairness":
        cells = {row.get("cell"): row for row in rows}
        for name in ("w1", "w16", "auto", "solo", "share-nofq",
                     "share-fq", "share-fq-w4", "throttle", "shed"):
            if name not in cells:
                problems.append(f"missing cell {name!r}")
        solo = cells.get("solo")
        solo_p99 = solo.get("victim_p99_us") if solo else None
        for i, row in enumerate(rows):
            cell = row.get("cell")
            label = f"row {i} (cell={cell!r})"
            if not isinstance(cell, str):
                problems.append(f"{label}: cell must be a string")
                continue
            if cell.startswith("share-fq") or cell == "throttle":
                jain = row.get("jain")
                if not (isinstance(jain, (int, float)) and jain >= 0.9):
                    problems.append(
                        f"{label}: Jain's index must be >= 0.9 with fair "
                        f"queueing on, got {jain!r}")
            if cell == "throttle":
                p99 = row.get("victim_p99_us")
                if isinstance(solo_p99, (int, float)) and solo_p99 > 0 \
                        and not (isinstance(p99, (int, float))
                                 and p99 <= 2.0 * solo_p99):
                    problems.append(
                        f"{label}: with the aggressor admission-shaped "
                        f"the victim p99 must stay <= 2x its no-aggressor "
                        f"baseline ({solo_p99!r} us), got {p99!r}")
                if not (isinstance(row.get("throttled"), int)
                        and row["throttled"] > 0):
                    problems.append(
                        f"{label}: admission cap must trip the client "
                        f"throttle counter, got {row.get('throttled')!r}")
            if cell == "shed":
                if not (isinstance(row.get("shed"), int)
                        and row["shed"] > 0):
                    problems.append(
                        f"{label}: occupancy cap must shed server-side, "
                        f"got {row.get('shed')!r}")
            if cell == "auto":
                best = row.get("best_static_kops")
                kops = row.get("kops")
                if not (isinstance(kops, (int, float))
                        and isinstance(best, (int, float)) and best > 0
                        and kops >= 0.9 * best):
                    problems.append(
                        f"{label}: AIMD autotune must land within 10% of "
                        f"the best static window ({best!r} kops), "
                        f"got {kops!r}")
    if experiment == "recovery_dualfail":
        if not any(row.get("ack_mode") == "ack_on_flush" for row in rows):
            problems.append("no ack_on_flush row (the durability contract "
                            "under test)")
        for i, row in enumerate(rows):
            label = f"row {i} (ack_mode={row.get('ack_mode')!r})"
            if row.get("untyped_errors") != 0:
                problems.append(f"{label}: {row.get('untyped_errors')!r} "
                                f"untyped errors (must be 0 — the blackout "
                                f"must fail typed)")
            if row.get("ack_mode") == "ack_on_flush" \
                    and row.get("lost_acked_writes") != 0:
                problems.append(f"{label}: {row.get('lost_acked_writes')!r} "
                                f"acked writes lost after log replay "
                                f"(must be 0)")
            if not (isinstance(row.get("recoveries"), int)
                    and row["recoveries"] >= 1):
                problems.append(f"{label}: recoveries must be >= 1, "
                                f"got {row.get('recoveries')!r}")
            if not _positive(row, "replayed_records"):
                problems.append(f"{label}: replayed_records must be "
                                f"positive, got "
                                f"{row.get('replayed_records')!r}")
            blackout = row.get("blackout_ms")
            if not (isinstance(blackout, (int, float))
                    and math.isfinite(blackout)
                    and blackout <= _RECOVERY_BLACKOUT_MS):
                problems.append(f"{label}: blackout_ms must stay <= "
                                f"{_RECOVERY_BLACKOUT_MS}, got {blackout!r}")
            ratio = row.get("recovered_ratio")
            if not (isinstance(ratio, (int, float))
                    and math.isfinite(ratio) and ratio >= 0.8):
                problems.append(f"{label}: recovered_ratio must be >= 0.8, "
                                f"got {ratio!r}")
    if experiment == "failover_availability":
        for i, row in enumerate(rows):
            if row.get("exceptions") != 0:
                problems.append(f"row {i}: {row.get('exceptions')!r} "
                                f"client-visible exceptions (must be 0)")
            if row.get("lost_acked_writes") != 0:
                problems.append(f"row {i}: {row.get('lost_acked_writes')!r} "
                                f"acknowledged writes lost (must be 0)")
            failovers = row.get("failovers")
            if not isinstance(failovers, int) or failovers < 1:
                problems.append(f"row {i}: failovers must be >= 1, "
                                f"got {failovers!r}")
            ratio = row.get("recovered_ratio")
            if not (isinstance(ratio, (int, float))
                    and math.isfinite(ratio) and ratio >= 0.8):
                problems.append(f"row {i}: recovered_ratio must be >= 0.8, "
                                f"got {ratio!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.bench.validate ARTIFACT.json ...",
              file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})")
            failed = True
            continue
        problems = validate_artifact(payload)
        for problem in problems:
            print(f"{path}: {problem}")
        if problems:
            failed = True
        else:
            print(f"{path}: ok ({payload['experiment']}, "
                  f"{len(payload['rows'])} rows)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
