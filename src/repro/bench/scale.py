"""Fig. 12 at cluster scale: 64 servers x 2048 closed-loop clients.

The paper's scalability study (Fig. 12) stops at the testbed's 8
machines.  This bench extends both axes to the shapes the flat-array
hot paths (``hydra.flat_hot_paths``) were built for:

* **scale-out** — weak scaling: 1..64 single-shard servers, 32
  closed-loop clients per server (2048 at the top).  Client machines
  scale with the population (32 handles per machine, 64 machines at the
  top) and handles share their host transport
  (``share_transport=True``) — constant per-machine density, because
  thousands of exclusive QPs per shard is Fig. 12's QP-wall, not this
  bench's subject, and oversubscribing a shared transport past its
  service rate trips the RC transport's 2 ms ``retry_timeout_ns`` into
  retry storms that would measure fault handling instead of scaling.
* **scale-up** — 1..8 shards on one server under a fixed 64-client
  population (sized so a single shard still serves the closed loop
  within the RC retry window; more clients measure overload, not
  shards).

Every cell runs twice: the default configuration (flat hot paths on the
two-tier calendar kernel) and the seed configuration (scalar per-object
paths, ``flat_hot_paths=False``, on the seed heapq kernel,
``Simulator(legacy=True)``).  ``speedup`` is the wall-clock ratio
between the two — the compounded gain of the kernel rebuild and the
flat-array protocol paths over the original implementation.  Because
both refactors preserve schedules, the two cells must dispatch the
*identical* event sequence: each row carries ``digest_match``, a BLAKE2
schedule-digest comparison of traced runs at a reduced clone of the
row's shape (same topology, capped clients/ops so tracing stays cheap).

The workload is a deterministic closed loop (not YCSB: no numpy
streams, no latency tallies — this bench measures the simulator, the
simulated curves are the ``normalized`` column): each client owns one
preloaded key and issues ``get`` with every 8th op (``j & 7 == 3``) a
``put`` — ~12.5% writes, Fig. 12's write mix.  Remote-pointer caching
and one-sided traversal are disabled so every op exercises the message
hot path end to end: client marshal -> NIC WQE chain -> shard sweep ->
flat parse/execute/respond -> doorbell batch -> client drain.

Sizing at 64 servers is explicit: the default 64 MB per-shard arena
would eagerly allocate 4 GB of bytearrays, so cells run with a 1 MB
arena and 1k-bucket tables (the working set is one key per client),
and 8 message slots per connection so clients sharing a
(machine, shard) connection pipeline instead of convoying.
"""

from __future__ import annotations

import gc
import json
import time

from ..config import SimConfig
from ..core import HydraCluster
from ..protocol import Op
from ..sim import Simulator, kernel_snapshot

__all__ = ["scale_matrix", "write_scale_artifact"]

#: Weak-scaling server counts (1 shard each); the top shape is the
#: 64-server x 2048-client headline cell.
_SCALE_OUT_SERVERS = (1, 2, 4, 8, 16, 32, 64)
#: Scale-up shard counts on a single server.
_SCALE_UP_SHARDS = (1, 2, 4, 8)
_CLIENTS_PER_SERVER = 32
_SCALE_UP_CLIENTS = 64
#: Client-machine sizing, measured against the RC transport's 2 ms
#: ``retry_timeout_ns``: a machine's shared transport sustains ~4
#: closed-loop handles per (machine, shard) connection, or ~8 handles
#: total when the machine has only one or two connections — past
#: either, an attempt queues beyond the retry window and the cell
#: degenerates into a RETRY_EXC storm (ev/op jumps from ~25 to 60-90,
#: sim throughput collapses ~100x).  Machines therefore scale with the
#: population at ``min(32, max(8, 4 * total_shards))`` handles each, so
#: every cell stays on the service-rate side of that cliff.
_CLIENTS_PER_MACHINE_CAP = 32
_CLIENTS_PER_CONN = 4
_OPS_PER_CLIENT = 16
_VALUE = bytes(100)
#: Digest-proof clone caps: same topology, fewer clients/ops.
_TRACE_CLIENTS = 48
_TRACE_OPS = 6
#: Best-of reps on cells small enough to repeat cheaply.
_REPS_SMALL = 2
_SMALL_CLIENTS = 256


def _config(flat: bool) -> SimConfig:
    """The bench configuration; ``flat`` toggles the hot-path mode only.

    All other overrides are identical across cells so the schedule (and
    its digest) depends on nothing but the flag under test.
    """
    return SimConfig().with_overrides(
        hydra={"flat_hot_paths": flat,
               "msg_slots_per_conn": 8,
               "buckets_per_shard": 1 << 10},
        client={"max_inflight_per_conn": 8,
                "rptr_cache_enabled": False},
        traversal={"enabled": False},
        memory={"arena_bytes": 1 << 20},
    )


def _client_loop(client, key: bytes, ops: int):
    """Deterministic closed loop: ~12.5% puts, rest gets, one key."""
    for j in range(ops):
        if (j & 7) == 3:
            yield from client.put(key, _VALUE)
        else:
            value = yield from client.get(key)
            if value is None:
                raise AssertionError(
                    f"GET returned None for preloaded key {key!r}")


def _build(servers: int, shards: int, n_clients: int, ops: int,
           flat: bool, legacy: bool, trace: bool):
    """Construct one cell: cluster, preloaded keys, client processes.

    Returns ``(sim, cluster, procs, total_ops)`` ready to run.
    """
    sim = Simulator(legacy=legacy)
    if trace:
        sim.trace_schedule()
    total_shards = servers * shards
    per_machine = min(_CLIENTS_PER_MACHINE_CAP,
                      max(8, _CLIENTS_PER_CONN * total_shards))
    n_machines = max(1, -(-n_clients // per_machine))
    cluster = HydraCluster(_config(flat), n_server_machines=servers,
                           shards_per_server=shards,
                           n_client_machines=n_machines, sim=sim)
    keys = [b"scale.k%06d" % i for i in range(n_clients)]
    for key in keys:
        shard = cluster.route(key)
        result = shard.store_for_key(key).upsert(key, _VALUE, Op.PUT)
        if result.status.name != "OK":
            raise RuntimeError(f"preload failed for {key!r}: "
                               f"{result.status.name}")
    cluster.start()
    clients = [cluster.client(machine_index=i % n_machines,
                              share_transport=True)
               for i in range(n_clients)]
    procs = [sim.process(_client_loop(c, keys[i], ops),
                         name=f"scale.c{i}")
             for i, c in enumerate(clients)]
    return sim, cluster, procs, n_clients * ops


def _timed_cell(servers: int, shards: int, n_clients: int, ops: int,
                flat: bool, legacy: bool) -> tuple[float, int, int, int]:
    """Run one timed cell; returns (wall_s, sim_ns, events, total_ops)."""
    sim, cluster, procs, total = _build(servers, shards, n_clients, ops,
                                        flat, legacy, trace=False)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run(until=sim.all_of(procs))
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    cluster.stop()
    events = int(kernel_snapshot(sim)["events_dispatched"])
    return wall, sim.now, events, total


def _digest_cell(servers: int, shards: int, n_clients: int, ops: int,
                 flat: bool, legacy: bool) -> str:
    """Traced run of a reduced clone; returns the BLAKE2 digest."""
    sim, cluster, procs, _total = _build(servers, shards, n_clients, ops,
                                         flat, legacy, trace=True)
    sim.run(until=sim.all_of(procs))
    cluster.stop()
    return sim.schedule_digest()


def _cell_rows(axis: str, servers: int, shards: int, n_clients: int,
               ops: int) -> dict:
    """Measure one matrix cell end to end and build its artifact row."""
    # Ordering proof first: the default stack (flat paths, batched
    # kernel) vs the seed stack (scalar paths, heapq kernel) must
    # dispatch bit-identical schedules on a reduced clone of this shape.
    t_clients = min(n_clients, _TRACE_CLIENTS)
    t_ops = min(ops, _TRACE_OPS)
    match = (_digest_cell(servers, shards, t_clients, t_ops,
                          flat=True, legacy=False)
             == _digest_cell(servers, shards, t_clients, t_ops,
                             flat=False, legacy=True))
    reps = _REPS_SMALL if n_clients <= _SMALL_CLIENTS else 1
    best: dict[str, tuple] = {}
    for _rep in range(reps):
        for mode, flat, legacy in (("flat", True, False),
                                   ("seed", False, True)):
            cell = _timed_cell(servers, shards, n_clients, ops,
                               flat, legacy)
            prev = best.get(mode)
            if prev is None or cell[0] < prev[0]:
                best[mode] = cell
    wall, sim_ns, events, total = best["flat"]
    seed_wall, _seed_ns, seed_events, _ = best["seed"]
    mops = (total / (sim_ns * 1e-9)) / 1e6 if sim_ns > 0 else 0.0
    return {
        "axis": axis,
        "servers": servers,
        "shards": servers * shards if axis == "scale_out" else shards,
        "clients": n_clients,
        "ops": total,
        "throughput_mops": round(mops, 4),
        "normalized": 0.0,  # filled per axis below
        "wall_s": round(wall, 4),
        "seed_wall_s": round(seed_wall, 4),
        "events": events,
        "seed_events": seed_events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "speedup": round(seed_wall / wall, 3) if wall > 0 else 0.0,
        "digest_match": match,
    }


def scale_matrix(scale: float = 1.0) -> list[dict]:
    """The BENCH_scale matrix: Fig. 12 axes at 64-server scale.

    ``scale`` shrinks the client population and per-client op count for
    smoke runs; the server/shard axes keep their full range so every
    topology is exercised.
    """
    ops = max(4, int(_OPS_PER_CLIENT * scale))
    # Smoke runs keep the shape extremes (including the 64-server
    # topology) but skip the interior of each axis.
    out_servers = _SCALE_OUT_SERVERS if scale >= 0.25 else (1, 8, 64)
    up_shards = _SCALE_UP_SHARDS if scale >= 0.25 else (1, 8)
    rows: list[dict] = []
    for servers in out_servers:
        n_clients = max(8, int(_CLIENTS_PER_SERVER * servers * scale))
        rows.append(_cell_rows("scale_out", servers, 1, n_clients, ops))
    for shards in up_shards:
        n_clients = max(8, int(_SCALE_UP_CLIENTS * scale))
        rows.append(_cell_rows("scale_up", 1, shards, n_clients, ops))
    # Normalize throughput within each axis against its first cell, the
    # way Fig. 12 plots "normalized throughput".
    for axis in ("scale_out", "scale_up"):
        base = next(r["throughput_mops"] for r in rows
                    if r["axis"] == axis)
        for r in rows:
            if r["axis"] == axis and base > 0:
                r["normalized"] = round(r["throughput_mops"] / base, 3)
    return rows


def write_scale_artifact(rows: list[dict],
                         path: str = "BENCH_scale.json") -> str:
    """Dump the scale matrix as a machine-readable artifact."""
    payload = {
        "experiment": "scale_matrix",
        "description": "Fig. 12 scale-out/scale-up matrix extended to 64 "
                       "servers x 2048 closed-loop clients (~12.5% "
                       "writes, message hot path only).  wall_s/events "
                       "are the default stack (flat-array hot paths on "
                       "the two-tier calendar kernel); seed_wall_s is "
                       "the seed stack (scalar per-object paths on the "
                       "heapq kernel, hydra.flat_hot_paths=False + "
                       "Simulator(legacy=True)); speedup is their "
                       "wall-clock ratio.  digest_match proves both "
                       "stacks dispatch bit-identical schedules (BLAKE2 "
                       "digests of traced reduced clones of each shape).",
        "unit": "normalized throughput / events/sec",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
