"""Kernel microbench: flat-array calendar vs the seed heapq event loop.

Times the event kernel alone — no RDMA, no shards — on the schedule
shapes that dominate Fig. 12-style sweeps, pitting the default two-tier
calendar (bucketed wheel + overflow heap + inline now-queue +
``step_batch``) against the seed kernel preserved behind
``Simulator(legacy=True)``.  Three workloads:

* ``sweep_loop`` — the shape the tentpole targets: 64 shard-sweep
  pollers on pooled recurring timers, each tick waking 12 responders
  through pooled zero-delay timers, over a resident population of 32k
  far-out timers (op deadlines, retry timers, leases).  The seed kernel
  pays a log-n heap push+pop per event against that ballast; the
  batched kernel takes the wheel/now-queue fast paths.
* ``wake_storm`` — processes chained through zero-delay succeeds: the
  now-queue fast path under full process machinery.
* ``mixed_calendar`` — near timers, far timers (overflow heap), wakes
  and AnyOf conditions in one pot: the chaos-storm shape.

Setup (building the ballast and workload closures) happens outside the
timed region; each cell reports the best of ``_REPS`` runs, legacy and
batched interleaved so machine noise hits both kernels alike.  Every
bench is preceded by an untimed *traced* run of the same workload on
both kernels at reduced size; the BLAKE2 schedule digests must match
bit-for-bit (``digest_match``) or the speedup is meaningless.  Timed
runs execute with GC parked, same hygiene as the YCSB driver.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Callable, Optional

from ..sim import Simulator, kernel_snapshot

__all__ = ["simcore_kernel", "write_simcore_artifact"]

#: Interleaved repetitions per (bench, kernel) cell; best-of wins.
_REPS = 3

#: Sweep-poll periods (ns): the CPU-cost/backoff band the config uses —
#: all well inside the 4096-slot wheel.
_PERIODS = (120, 250, 400, 650, 900, 1300)

#: Resident far-out timers behind the sweep loop (op deadlines 50 ms,
#: retry timers 2 ms, leases 500 ms — all far beyond the wheel horizon).
_BALLAST = 32_768


def _sweep_loop(sim: Simulator, scale: float) -> Optional[int]:
    """64 sweep pollers + 12 inline wakes per tick over timer ballast."""
    horizon = int(1_000_000 * scale)
    for i in range(_BALLAST):
        sim.timeout(10_000_000 + 137 * i)

    def make(period: int) -> None:
        timer = sim.pooled_timer()
        wake_rearms = [sim.pooled_timer().rearm for _ in range(12)]

        def tick(_ev):
            if sim.now < horizon:
                timer.rearm(period)
                timer.callbacks.append(tick)
            for rearm in wake_rearms:
                rearm(0)

        timer.rearm(period)
        timer.callbacks.append(tick)

    for _ in range(64):
        make(800)
    return horizon


def _wake_storm(sim: Simulator, scale: float) -> Optional[int]:
    """Ping-pong process chains of immediate succeeds."""
    rounds = int(4_000 * scale)

    def chain(idx: int):
        for _ in range(rounds):
            ev = sim.event()
            ev.succeed(idx)
            yield ev
        # Keep at least one calendar entry so run() interleaves chains.
        yield sim.timeout(1)

    for i in range(16):
        sim.process(chain(i), name=f"wake{i}")
    return None


def _mixed_calendar(sim: Simulator, scale: float) -> Optional[int]:
    """Near + far timers, wakes and conditions — the chaos-storm pot."""
    horizon = int(400_000 * scale)

    def near(period: int):
        timer = sim.pooled_timer()
        while sim.now < horizon:
            yield timer.rearm(period)

    def far(period: int):
        # Beyond the wheel limit: every arm lands in the overflow heap.
        while sim.now < horizon:
            yield sim.timeout(period)

    def waker():
        while sim.now < horizon:
            fast = sim.event()
            fast.succeed()
            yield sim.any_of([fast, sim.timeout(700)])
            yield sim.timeout(300)

    for i in range(12):
        sim.process(near(_PERIODS[i % len(_PERIODS)]), name=f"near{i}")
    for i in range(4):
        sim.process(far(5_000 + 1_700 * i), name=f"far{i}")
    for i in range(6):
        sim.process(waker(), name=f"waker{i}")
    return None


_BENCHES: tuple[tuple[str, Callable[[Simulator, float], Optional[int]]],
                ...] = (
    ("sweep_loop", _sweep_loop),
    ("wake_storm", _wake_storm),
    ("mixed_calendar", _mixed_calendar),
)


def _timed_run(build, scale: float, legacy: bool) -> tuple[float, Simulator]:
    sim = Simulator(legacy=legacy)
    until = build(sim, scale)
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        sim.run(until=until)
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return wall, sim


def _digest(build, scale: float, legacy: bool) -> str:
    sim = Simulator(legacy=legacy)
    sim.trace_schedule()
    until = build(sim, scale)
    sim.run(until=until)
    return sim.schedule_digest()


def simcore_kernel(scale: float = 0.5) -> list[dict]:
    """The BENCH_simcore sweep: two kernels x three schedule shapes.

    Each bench contributes a legacy baseline row (speedup 1.0) and a
    batched-kernel row whose speedup is the events/sec ratio; both carry
    the digest-equality proof and their kernel's telemetry mix.
    """
    rows: list[dict] = []
    for bench, build in _BENCHES:
        # Ordering proof first, at a size where tracing stays cheap.
        trace_scale = min(scale, 0.1)
        match = (_digest(build, trace_scale, legacy=True)
                 == _digest(build, trace_scale, legacy=False))
        cells: dict[str, tuple[float, Simulator]] = {}
        for _rep in range(_REPS):
            for kernel, legacy in (("legacy", True), ("batched", False)):
                wall, sim = _timed_run(build, scale, legacy)
                best = cells.get(kernel)
                if best is None or wall < best[0]:
                    cells[kernel] = (wall, sim)
        base_wall, base_sim = cells["legacy"]
        base_eps = (base_sim.k_dispatched / base_wall if base_wall > 0
                    else 0.0)
        for kernel in ("legacy", "batched"):
            wall, sim = cells[kernel]
            snap = kernel_snapshot(sim)
            events = int(snap["events_dispatched"])
            eps = events / wall if wall > 0 else 0.0
            rows.append({
                "bench": bench,
                "kernel": kernel,
                "events": events,
                "wall_s": round(wall, 4),
                "events_per_sec": round(eps, 1),
                "speedup": (round(eps / base_eps, 3)
                            if kernel != "legacy" and base_eps > 0 else 1.0),
                "digest_match": match,
                "now_rate": round(snap["now_rate"], 3),
                "wheel_rate": round(snap["wheel_rate"], 3),
                "heap_rate": round(snap["heap_rate"], 3),
                "timer_reuse_rate": round(snap["timer_reuse_rate"], 3),
                "peak_calendar": int(snap["peak_calendar"]),
            })
    return rows


def write_simcore_artifact(rows: list[dict],
                           path: str = "BENCH_simcore.json") -> str:
    """Dump the kernel microbench as a machine-readable artifact."""
    payload = {
        "experiment": "simcore_kernel",
        "description": "event-kernel events/sec on sweep-loop, wake-storm "
                       "and mixed-calendar schedule shapes: two-tier "
                       "bucketed calendar + inline now-queue + pooled "
                       "timers + step_batch vs the seed heapq kernel "
                       "(Simulator(legacy=True)); digest_match proves "
                       "bit-identical (time, seq) dispatch order via "
                       "BLAKE2 schedule digests on traced runs",
        "unit": "events/sec",
        "rows": rows,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
