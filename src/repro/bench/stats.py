"""Result containers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..sim import Tally

__all__ = ["LatencySummary", "RunResult", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Latency digest in microseconds."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        nan = math.nan
        return cls(0, nan, nan, nan, nan, nan)

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0"
        return (f"mean={self.mean_us:.1f}us p50={self.p50_us:.1f} "
                f"p95={self.p95_us:.1f} p99={self.p99_us:.1f}")


def summarize(tally: Tally) -> LatencySummary:
    """Digest a nanosecond Tally into microseconds."""
    if tally.count == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=tally.count,
        mean_us=tally.mean / 1000.0,
        p50_us=tally.percentile(50) / 1000.0,
        p95_us=tally.percentile(95) / 1000.0,
        p99_us=tally.percentile(99) / 1000.0,
        max_us=tally.max / 1000.0,
    )


@dataclass
class RunResult:
    """One experiment run: throughput + per-op-type latency + extras."""

    name: str
    measured_ops: int
    duration_ns: int
    get_latency: LatencySummary = field(default_factory=LatencySummary.empty)
    update_latency: LatencySummary = field(
        default_factory=LatencySummary.empty)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_mops(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        # ops per ns == Gops/s; x1000 -> Mops/s.
        return self.measured_ops / self.duration_ns * 1000.0

    @property
    def throughput_kops(self) -> float:
        return self.throughput_mops * 1000.0

    def scaled_against(self, other: "RunResult") -> float:
        """This run's throughput as a multiple of ``other``'s."""
        base = other.throughput_mops
        return self.throughput_mops / base if base else math.inf

    def row(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "throughput_mops": round(self.throughput_mops, 4),
            "get_mean_us": round(self.get_latency.mean_us, 2)
            if self.get_latency.count else None,
            "update_mean_us": round(self.update_latency.mean_us, 2)
            if self.update_latency.count else None,
            **self.extras,
        }
