"""Plain-text tables for experiment results (paper-style rows/series)."""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = ["format_table", "print_table", "format_series"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned text table (insertion-ordered cols)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells))
              for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict[str, Any]], title: str = "") -> None:
    print(format_table(rows, title=title))
    print()


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float],
                  y_label: str = "y") -> str:
    """One figure series as 'name: (x, y) (x, y) ...'."""
    pairs = " ".join(f"({x}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name} [{y_label}]: {pairs}"
