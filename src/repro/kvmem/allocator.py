"""Size-class slab allocator over a registered arena.

Each shard owns one arena (NUMA-local, RDMA-registered).  Allocation rounds
the requested extent up to a size class and pops that class's free list,
falling back to bumping the high-water mark.  Frees go back to the class
list — extents are never split or coalesced, which keeps both the model and
the real system O(1) per op.
"""

from __future__ import annotations

import bisect

from ..rdma.memory import MemoryRegion

__all__ = ["SlabAllocator", "OutOfMemory"]


class OutOfMemory(Exception):
    """Arena exhausted (live + not-yet-reclaimed items fill it)."""


class SlabAllocator:
    """O(1) size-class allocator; tracks per-extent classes for free()."""

    def __init__(self, region: MemoryRegion,
                 size_classes: tuple[int, ...]):
        if not size_classes:
            raise ValueError("need at least one size class")
        self.region = region
        self.classes = tuple(sorted(size_classes))
        if self.classes[0] <= 0:
            raise ValueError("size classes must be positive")
        self._free: dict[int, list[int]] = {c: [] for c in self.classes}
        self._bump = 0
        #: offset -> size class of every live extent.
        self._live: dict[int, int] = {}
        self.live_bytes = 0
        self.allocated_ops = 0
        self.freed_ops = 0

    def class_for(self, nbytes: int) -> int:
        """Smallest size class holding ``nbytes``."""
        i = bisect.bisect_left(self.classes, nbytes)
        if i == len(self.classes):
            raise ValueError(
                f"extent of {nbytes}B exceeds largest size class "
                f"{self.classes[-1]}B"
            )
        return self.classes[i]

    def alloc(self, nbytes: int) -> int:
        """Allocate an extent of at least ``nbytes``; returns its offset."""
        cls = self.class_for(nbytes)
        free_list = self._free[cls]
        if free_list:
            offset = free_list.pop()
        else:
            if self._bump + cls > self.region.nbytes:
                raise OutOfMemory(
                    f"arena full: {self._bump}B bumped of "
                    f"{self.region.nbytes}B, wanted {cls}B"
                )
            offset = self._bump
            self._bump += cls
        self._live[offset] = cls
        self.live_bytes += cls
        self.allocated_ops += 1
        return offset

    def free(self, offset: int) -> None:
        cls = self._live.pop(offset, None)
        if cls is None:
            raise ValueError(f"free of unallocated offset {offset}")
        self._free[cls].append(offset)
        self.live_bytes -= cls
        self.freed_ops += 1

    def extent_class(self, offset: int) -> int:
        """Size class of a live extent (KeyError if not live)."""
        return self._live[offset]

    @property
    def live_extents(self) -> int:
        return len(self._live)

    @property
    def utilization(self) -> float:
        return self.live_bytes / self.region.nbytes

    def live_ranges(self) -> list[tuple[int, int]]:
        """Sorted (offset, length) of live extents — test/debug helper."""
        return sorted((off, cls) for off, cls in self._live.items())
