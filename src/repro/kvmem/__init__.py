"""KV memory substrate: item layout, slab allocation, lease reclamation."""

from .allocator import OutOfMemory, SlabAllocator
from .layout import (
    GUARD_DEAD,
    GUARD_LIVE,
    GUARDIAN_BYTES,
    HEADER_BYTES,
    ITEM_MAGIC,
    ParsedItem,
    cachelines,
    encode_item,
    item_size,
    kill_item,
    parse_item,
    parse_item_prefix,
    read_guardian,
    write_item,
)
from .reclaim import POISON_BYTE, LeaseReclaimer

__all__ = [
    "SlabAllocator",
    "OutOfMemory",
    "LeaseReclaimer",
    "POISON_BYTE",
    "GUARD_LIVE",
    "GUARD_DEAD",
    "GUARDIAN_BYTES",
    "HEADER_BYTES",
    "ITEM_MAGIC",
    "ParsedItem",
    "cachelines",
    "encode_item",
    "item_size",
    "kill_item",
    "parse_item",
    "parse_item_prefix",
    "read_guardian",
    "write_item",
]
