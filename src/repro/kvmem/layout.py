"""On-arena key-value item layout (§4.2.3).

Every RDMA-readable item is stored out-of-place with a trailing *guardian
word*.  Updates never modify an item: the shard writes a fresh item
elsewhere and atomically flips the old guardian to DEAD.  A one-sided RDMA
Read always fetches the guardian along with the data, so a client can tell
that its remote pointer is stale without any server involvement.

Layout (little-endian)::

    0   u16  magic      0x4B56 ("KV")
    2   u16  klen
    4   u32  vlen
    8   u64  version    monotonically increasing per key
    16  key  bytes      klen
    ..  val  bytes      vlen
    ..  u64  guardian   LIVE / DEAD

Parsing is defensive: a reclaimed-and-reused extent may contain anything,
and the client must classify such bytes as *invalid* rather than crash or
silently return garbage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..rdma.memory import MemoryRegion

__all__ = [
    "GUARD_LIVE",
    "GUARD_DEAD",
    "ITEM_MAGIC",
    "HEADER_BYTES",
    "GUARDIAN_BYTES",
    "item_size",
    "encode_item",
    "write_item",
    "read_guardian",
    "kill_item",
    "parse_item",
    "parse_item_prefix",
    "ParsedItem",
    "cachelines",
]

ITEM_MAGIC = 0x4B56
GUARD_LIVE = 0x600D600D600D600D
GUARD_DEAD = 0xDEADDEADDEADDEAD
HEADER_BYTES = 16
GUARDIAN_BYTES = 8
MAX_KLEN = 0xFFFF
MAX_VLEN = 0xFFFFFFFF

_HEADER = struct.Struct("<HHIQ")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class ParsedItem:
    """Result of decoding item bytes."""

    key: bytes
    value: bytes
    version: int
    live: bool


def item_size(klen: int, vlen: int) -> int:
    """Total arena bytes for a key/value of the given lengths."""
    return HEADER_BYTES + klen + vlen + GUARDIAN_BYTES


def cachelines(nbytes: int, line: int = 64) -> int:
    """Cachelines spanned by ``nbytes`` (cost-model helper)."""
    return max(1, -(-nbytes // line))


def encode_item(key: bytes, value: bytes, version: int,
                live: bool = True) -> bytes:
    """Serialize an item to its on-arena representation."""
    if len(key) > MAX_KLEN:
        raise ValueError(f"key too long ({len(key)} bytes)")
    if len(value) > MAX_VLEN:
        raise ValueError(f"value too long ({len(value)} bytes)")
    guard = GUARD_LIVE if live else GUARD_DEAD
    return (
        _HEADER.pack(ITEM_MAGIC, len(key), len(value), version)
        + key
        + value
        + _U64.pack(guard)
    )


def write_item(region: MemoryRegion, offset: int, key: bytes, value: bytes,
               version: int) -> int:
    """Write a live item at ``offset``; returns the extent length."""
    blob = encode_item(key, value, version, live=True)
    region.write(offset, blob)
    return len(blob)


def _guardian_offset(klen: int, vlen: int) -> int:
    return HEADER_BYTES + klen + vlen


def read_guardian(region: MemoryRegion, offset: int, klen: int,
                  vlen: int) -> int:
    return region.read_u64(offset + _guardian_offset(klen, vlen))


def kill_item(region: MemoryRegion, offset: int, klen: int,
              vlen: int) -> None:
    """Atomically flip the guardian word to DEAD (out-of-place update)."""
    region.write_u64(offset + _guardian_offset(klen, vlen), GUARD_DEAD)


def parse_item(data: bytes) -> Optional[ParsedItem]:
    """Decode bytes fetched by an RDMA Read.

    Returns ``None`` when the bytes cannot possibly be a well-formed item
    (wrong magic, inconsistent lengths) — the caller treats that the same
    as a DEAD guardian: fall back to a message-based GET.
    """
    if len(data) < HEADER_BYTES + GUARDIAN_BYTES:
        return None
    magic, klen, vlen, version = _HEADER.unpack_from(data, 0)
    if magic != ITEM_MAGIC:
        return None
    if item_size(klen, vlen) != len(data):
        return None
    key = data[HEADER_BYTES:HEADER_BYTES + klen]
    value = data[HEADER_BYTES + klen:HEADER_BYTES + klen + vlen]
    (guard,) = _U64.unpack_from(data, HEADER_BYTES + klen + vlen)
    if guard == GUARD_LIVE:
        live = True
    elif guard == GUARD_DEAD:
        live = False
    else:
        return None
    return ParsedItem(key=key, value=value, version=version, live=live)


def parse_item_prefix(data: bytes) -> Optional[ParsedItem]:
    """Decode an item occupying a *prefix* of ``data``.

    Index-traversal Reads fetch a whole size-class extent (the client only
    knows the class, not the exact item length), so the item ends where its
    header says — anything after the guardian is slack.  Same defensive
    contract as :func:`parse_item`: garbage decodes to ``None``, never to a
    plausible-looking value.
    """
    if len(data) < HEADER_BYTES + GUARDIAN_BYTES:
        return None
    magic, klen, vlen, version = _HEADER.unpack_from(data, 0)
    if magic != ITEM_MAGIC:
        return None
    if item_size(klen, vlen) > len(data):
        return None
    key = data[HEADER_BYTES:HEADER_BYTES + klen]
    value = data[HEADER_BYTES + klen:HEADER_BYTES + klen + vlen]
    (guard,) = _U64.unpack_from(data, HEADER_BYTES + klen + vlen)
    if guard == GUARD_LIVE:
        live = True
    elif guard == GUARD_DEAD:
        live = False
    else:
        return None
    return ParsedItem(key=key, value=value, version=version, live=live)
