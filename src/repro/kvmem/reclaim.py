"""Lease-deferred memory reclamation (§4.2.3).

When a shard retires an item (update or remove), the extent cannot be freed
immediately: clients may hold remote pointers and the lease is the server's
promise that one-sided reads stay safe until it expires.  Retired extents
are parked here with their *frozen* lease expiry (retired keys never get
extensions), and a background process frees them once the lease has lapsed.

``scribble=True`` fills freed extents with a poison pattern, which test
suites use to prove that a protocol violation (reading past the lease)
would actually be observable rather than silently benign.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..sim import Counter, Simulator
from ..sim.events import PooledTimer
from ..sim.process import Process
from .allocator import SlabAllocator

__all__ = ["LeaseReclaimer", "POISON_BYTE"]

POISON_BYTE = 0xA5


class LeaseReclaimer:
    """Priority queue of retired extents + the background free thread."""

    def __init__(self, sim: Simulator, allocator: SlabAllocator,
                 period_ns: int, scribble: bool = False,
                 horizon_ns: int = 0):
        self.sim = sim
        self.allocator = allocator
        self.period_ns = period_ns
        self.scribble = scribble
        #: Read horizon: extents additionally stay parked for this long
        #: after retirement, covering index-traversal Reads that hold no
        #: lease (the client validates via guardian + parse instead; the
        #: horizon bounds how stale a traversed bucket snapshot can be
        #: while its offsets still point at unreused memory).
        self.horizon_ns = horizon_ns
        #: (lease_expiry_ns, seq, offset) — seq breaks ties deterministically.
        self._pending: list[tuple[int, int, int]] = []
        self._seq = 0
        self.reclaimed = Counter("reclaimed")
        self._proc: Optional[Process] = None
        self._stopped = False
        #: One recycled period timer for the sweep loop — the reclaimer
        #: fires every ``period_ns`` for the simulation's whole lifetime,
        #: so a fresh Timeout per tick is pure allocator churn.
        self._timer = PooledTimer(sim)

    def retire(self, offset: int, lease_expiry_ns: int) -> None:
        """Park a dead extent until its (frozen) lease expires — and, when
        a read horizon is configured, at least ``horizon_ns`` from now."""
        release = max(lease_expiry_ns, self.sim.now + self.horizon_ns)
        heapq.heappush(self._pending, (release, self._seq, offset))
        self._seq += 1

    @property
    def pending(self) -> int:
        return len(self._pending)

    def sweep(self) -> int:
        """Free every extent whose lease has lapsed; returns count freed."""
        now = self.sim.now
        n = 0
        while self._pending and self._pending[0][0] <= now:
            _, _, offset = heapq.heappop(self._pending)
            if self.scribble:
                cls = self.allocator.extent_class(offset)
                self.allocator.region.write(offset, bytes([POISON_BYTE]) * cls)
            self.allocator.free(offset)
            n += 1
        self.reclaimed.add(n)
        return n

    def start(self) -> Process:
        """Launch the background reclamation process."""
        if self._proc is not None:
            raise RuntimeError("reclaimer already started")
        self._proc = self.sim.process(self._run(), name="reclaimer")
        return self._proc

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        timer = self._timer
        while not self._stopped:
            if timer.callbacks is None:
                yield timer.rearm(self.period_ns)
            else:  # pragma: no cover - interrupted mid-flight
                yield self.sim.timeout(self.period_ns)
            self.sweep()
