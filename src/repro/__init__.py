"""repro — a reproduction of HydraDB (SC '15) on a simulated RDMA fabric.

HydraDB is a resilient, RDMA-driven in-memory key-value middleware.  This
package reimplements the full system — RDMA-Write message passing,
RDMA-Read GET acceleration with leases and guardian words, the compact
cache-friendly hash table, single-threaded multicore-aware shards,
star-formed replication with RDMA logging, and ZooKeeper/SWAT failover —
on top of a deterministic discrete-event simulation of the paper's
InfiniBand testbed (see DESIGN.md for the substitution rationale).

Entry points:

* :class:`repro.HydraCluster` — build and drive a cluster (quickstart API).
* :mod:`repro.bench.experiments` — canned reproductions of every figure.
* :mod:`repro.baselines` — Memcached/Redis/RAMCloud behavioural models.
"""

from .config import (ClientConfig, QosConfig, SimConfig, TraversalConfig)
from .core import (Backpressure, ClientTransport, HydraClient, HydraCluster,
                   TenantThrottled)
from .qos import (AimdController, DeficitRoundRobin, SlotArbiter, TokenBucket)

__version__ = "1.0.0"

__all__ = [
    "HydraCluster",
    "HydraClient",
    "ClientTransport",
    "SimConfig",
    "ClientConfig",
    "QosConfig",
    "TraversalConfig",
    "Backpressure",
    "TenantThrottled",
    "TokenBucket",
    "DeficitRoundRobin",
    "SlotArbiter",
    "AimdController",
    "__version__",
]
