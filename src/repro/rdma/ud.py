"""Unreliable Datagram queue pairs (the HERD design point, §3/§4.2.1).

UD endpoints are connectionless: one QP talks to any peer, carries no
connection state on the NIC (so it never pays the QP-cache penalty that
walls off RC scale-up), and a send completes locally without waiting for
any acknowledgement.  The price is reliability: a datagram with no posted
receive at the target — or one that hits the injected loss probability —
vanishes silently.  The paper's position is that enterprise workloads
need RC's guarantees; the ``ud_messaging`` experiment quantifies both
sides of that trade-off.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING

from ..sim.events import Event
from .cq import CompletionQueue
from .verbs import Completion, Opcode, WcStatus

if TYPE_CHECKING:  # pragma: no cover
    from .nic import Nic

__all__ = ["UdQueuePair"]

_ud_qpns = count(0x8000_0001)

#: UD datagrams are MTU-bound; the standard IB MTU is 4096 bytes.
UD_MTU = 4096


class UdQueuePair:
    """A connectionless endpoint bound to one NIC."""

    def __init__(self, sim, nic: "Nic"):
        self.sim = sim
        self.nic = nic
        self.qp_num = next(_ud_qpns)
        self.send_cq = CompletionQueue(sim, f"udqp{self.qp_num}.scq")
        self.recv_cq = CompletionQueue(sim, f"udqp{self.qp_num}.rcq")
        self.recv_queue: list[int] = []
        self._wr_seq = 0

    def _next_wr(self) -> int:
        self._wr_seq += 1
        return self._wr_seq

    def post_recv(self, wr_id: int = 0) -> None:
        self.recv_queue.append(wr_id or self._next_wr())

    def post_send(self, dst: "UdQueuePair", data: bytes) -> Event:
        """Send a datagram to another UD endpoint.

        The returned event fires with the *local* send completion once the
        NIC has put the datagram on the wire — success says nothing about
        delivery (fire-and-forget).
        """
        if len(data) > UD_MTU:
            raise ValueError(
                f"UD datagram of {len(data)}B exceeds the {UD_MTU}B MTU")
        return self.nic.issue_ud_send(self, dst, bytes(data),
                                      self._next_wr())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UdQP {self.qp_num:#x} nic={self.nic.nic_id}>"


def issue_ud_send(nic: "Nic", src_qp: UdQueuePair, dst_qp: UdQueuePair,
                  data: bytes, wr_id: int) -> Event:
    """NIC-side UD send orchestration (bound as ``Nic.issue_ud_send``)."""
    sim = nic.sim
    ev = Event(sim)
    if not nic.alive:
        ev.succeed(Completion(opcode=Opcode.SEND,
                              status=WcStatus.LOCAL_QP_ERR, wr_id=wr_id,
                              qp_num=src_qp.qp_num))
        return ev
    nic.metrics.counter("rdma.ud_send.ops").add()
    dst_nic = dst_qp.nic
    prop = nic.fabric.prop_ns(nic, dst_nic)
    cfg = nic.cfg

    def after_tx() -> None:
        # Local completion: UD does not wait for the wire, let alone an ack.
        ev.succeed(Completion(opcode=Opcode.SEND, status=WcStatus.SUCCESS,
                              wr_id=wr_id, byte_len=len(data),
                              qp_num=src_qp.qp_num))
        if nic.fabric.ud_dropped():
            nic.metrics.counter("rdma.ud_send.dropped").add()
            return
        fly = sim.timeout(prop)
        fly.callbacks.append(lambda _e: arrive())

    def arrive() -> None:
        if not dst_nic.alive:
            return
        dst_nic.rx.submit(
            # No QP state fetch for UD: only the flat per-op cost.
            lambda: cfg.rx_op_ns + cfg.send_recv_extra_ns,
            deliver,
        )

    def deliver() -> None:
        if not dst_qp.recv_queue:
            dst_nic.metrics.counter("rdma.ud_send.no_recv").add()
            return  # silently dropped: UD has no RNR machinery
        recv_wr = dst_qp.recv_queue.pop(0)
        dst_qp.recv_cq.push(Completion(
            opcode=Opcode.RECV, status=WcStatus.SUCCESS, wr_id=recv_wr,
            byte_len=len(data), data=data, qp_num=dst_qp.qp_num))

    # UD TX skips the QP-state fetch: flat cost + serialization only.
    nic.tx.submit(
        lambda: cfg.tx_op_ns + nic.config.fabric.serialization_ns(len(data)),
        after_tx,
    )
    return ev
