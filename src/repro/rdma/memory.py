"""Registered memory regions.

A :class:`MemoryRegion` is real addressable storage (a ``bytearray``): RDMA
Reads return the bytes that are actually there at the simulated instant the
NIC's DMA engine runs.  This is what lets the guardian-word / lease
machinery be *tested* rather than assumed — a reclaimed-and-reused extent
really does serve stale bytes to a stale remote pointer.
"""

from __future__ import annotations

import struct

__all__ = ["MemoryRegion", "AccessViolation"]

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class AccessViolation(Exception):
    """Out-of-bounds access through a registered region."""


class MemoryRegion:
    """A contiguous, registerable chunk of host memory."""

    __slots__ = ("buf", "nbytes", "numa_domain", "name", "rkey", "owner_nic",
                 "_watchers")

    def __init__(self, nbytes: int, numa_domain: int = 0, name: str = ""):
        if nbytes <= 0:
            raise ValueError("region size must be positive")
        self.buf = bytearray(nbytes)
        self.nbytes = nbytes
        self.numa_domain = numa_domain
        self.name = name
        #: Assigned when the region is registered with a NIC.
        self.rkey: int | None = None
        self.owner_nic = None  # type: ignore[var-annotated]
        #: Simulation-level doorbell: callbacks fired on every write().
        #: Pollers block on these instead of spinning the event loop, then
        #: charge the polling-latency penalty explicitly — the observable
        #: timing of sustained polling is preserved while the simulator
        #: skips the dead sweeps.  zero()/word-writes do NOT notify.
        self._watchers: list = []

    # -- bounds-checked raw access ---------------------------------------
    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise AccessViolation(
                f"[{self.name}] access {offset}+{length} outside region of "
                f"{self.nbytes} bytes"
            )

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return bytes(self.buf[offset:offset + length])

    def write(self, offset: int, data: bytes | bytearray | memoryview) -> None:
        self._check(offset, len(data))
        self.buf[offset:offset + len(data)] = data
        for cb in self._watchers:
            cb(self)

    def subscribe(self, callback) -> None:
        """Register a doorbell callback invoked after every write()."""
        self._watchers.append(callback)

    def zero(self, offset: int, length: int) -> None:
        self._check(offset, length)
        self.buf[offset:offset + length] = bytes(length)

    # -- word helpers (little-endian, as on the paper's x86_64 testbed) ---
    def read_u64(self, offset: int) -> int:
        self._check(offset, 8)
        return _U64.unpack_from(self.buf, offset)[0]

    def write_u64(self, offset: int, value: int) -> None:
        self._check(offset, 8)
        _U64.pack_into(self.buf, offset, value & 0xFFFFFFFFFFFFFFFF)

    def read_u32(self, offset: int) -> int:
        self._check(offset, 4)
        return _U32.unpack_from(self.buf, offset)[0]

    def write_u32(self, offset: int, value: int) -> None:
        self._check(offset, 4)
        _U32.pack_into(self.buf, offset, value & 0xFFFFFFFF)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MemoryRegion {self.name!r} {self.nbytes}B rkey={self.rkey}>"
        )
