"""Kernel TCP transport (IPoIB) for the baselines and HydraDB-TCP mode.

Unlike the RDMA path, every message costs *CPU* on both ends: the sender
burns ``kernel_tx_ns`` inside :meth:`TcpConnection.send` (the returned event
is the syscall returning) and the receiver burns ``kernel_rx_ns`` before
:meth:`TcpConnection.recv` hands the message over.  Serialization shares a
per-machine wire engine, and effective IPoIB goodput is well below the
InfiniBand line rate.  This is the architectural gap Figs. 2 and 9 price.
"""

from __future__ import annotations

from typing import Any

from ..config import SimConfig
from ..hardware.machine import Machine
from ..sim import Simulator, Store
from ..sim.events import Event
from .nic import _Engine

__all__ = ["TcpNetwork", "TcpStack", "TcpConnection", "TcpError"]


class TcpError(Exception):
    """Connection-level failure (peer dead, no listener)."""


class TcpConnection:
    """One direction-pair of an established connection."""

    def __init__(self, sim: Simulator, network: "TcpNetwork",
                 local: "TcpStack", remote: "TcpStack"):
        self.sim = sim
        self.network = network
        self.local = local
        self.remote = remote
        self._inbox = Store(sim)
        self.peer: "TcpConnection" = None  # type: ignore[assignment]
        self.open = True

    def _wire(self, other: "TcpConnection") -> None:
        self.peer = other
        other.peer = self

    def close(self) -> None:
        self.open = False
        if self.peer is not None:
            self.peer.open = False

    def send(self, payload: Any, nbytes: int) -> Event:
        """Transmit ``payload``; yields back when the syscall returns.

        Delivery to the peer's inbox happens later (wire + stack delays).
        A send into a dead peer is silently dropped, like a real half-open
        connection; the caller's application timeout catches it.
        """
        if not self.open:
            raise TcpError("send on closed connection")
        inj = self.network.fault_injector
        if inj is not None:
            verdict = inj.tcp_fault(self, payload, nbytes)
            if verdict == "reset":
                # RST from the middle of the network: both sides observe
                # the connection dying; this send fails synchronously.
                self.close()
                raise TcpError("connection reset (injected)")
            if verdict == "short" and isinstance(payload, (bytes, bytearray)) \
                    and len(payload) > 1:
                # Short read: the peer's recv returns a truncated message
                # (framing torn across a segment boundary); the receiver's
                # decode-and-reject path must handle it.
                cut = max(1, len(payload) // 2)
                payload = bytes(payload[:cut])
                nbytes = max(1, nbytes // 2)
        cfg = self.network.config.tcp
        syscall = self.sim.timeout(cfg.kernel_tx_ns)
        prop = self.network.prop_ns(self.local, self.remote)
        peer_conn = self.peer

        def _handed_to_wire(_e: Event) -> None:
            self.local.wire.submit(
                lambda: cfg.serialization_ns(nbytes),
                lambda: _in_flight(),
            )

        def _in_flight() -> None:
            fly = self.sim.timeout(prop)
            fly.callbacks.append(lambda _e: _arrive())

        def _arrive() -> None:
            if not self.remote.alive:
                return
            # All inbound messages on the target machine serialize through
            # the softirq path before reaching any socket.
            self.remote.softirq.submit(
                lambda: cfg.softirq_rx_ns,
                lambda: peer_conn._inbox.put((payload, nbytes))
                if peer_conn.open else None,
            )

        syscall.callbacks.append(_handed_to_wire)
        return syscall

    def send_many(self, payloads: list[tuple[Any, int]]) -> Event:
        """Batched transmit: one syscall's CPU charge for N messages.

        The writev()/TCP_CORK analogue of :meth:`send` — the kernel TX
        path is crossed once for the whole batch, while each payload
        still pays its own serialization, propagation, and softirq RX
        (the wire does not get faster, only the sender's CPU).  Faults
        are consulted per payload; an injected reset kills the
        connection and the rest of the batch with it, surfaced as the
        returned event failing.
        """
        if not self.open:
            raise TcpError("send on closed connection")
        if not payloads:
            raise ValueError("empty send_many batch")
        inj = self.network.fault_injector
        staged: list[tuple[Any, int]] = []
        reset = False
        for payload, nbytes in payloads:
            if inj is not None:
                verdict = inj.tcp_fault(self, payload, nbytes)
                if verdict == "reset":
                    self.close()
                    reset = True
                    break
                if verdict == "short" \
                        and isinstance(payload, (bytes, bytearray)) \
                        and len(payload) > 1:
                    cut = max(1, len(payload) // 2)
                    payload = bytes(payload[:cut])
                    nbytes = max(1, nbytes // 2)
            staged.append((payload, nbytes))
        cfg = self.network.config.tcp
        syscall = self.sim.timeout(cfg.kernel_tx_ns)
        prop = self.network.prop_ns(self.local, self.remote)
        peer_conn = self.peer

        def _deliver(payload: Any, nbytes: int) -> None:
            def _in_flight() -> None:
                fly = self.sim.timeout(prop)
                fly.callbacks.append(lambda _e: _arrive())

            def _arrive() -> None:
                if not self.remote.alive:
                    return
                # Payloads staged before an injected RST predate it on
                # the wire: the peer reads them before observing the
                # reset, so the mid-batch close does not eat the prefix.
                self.remote.softirq.submit(
                    lambda: cfg.softirq_rx_ns,
                    lambda: peer_conn._inbox.put((payload, nbytes))
                    if (peer_conn.open or reset) else None,
                )

            self.local.wire.submit(
                lambda: cfg.serialization_ns(nbytes),
                _in_flight,
            )

        def _handed_to_wire(_e: Event) -> None:
            for payload, nbytes in staged:
                _deliver(payload, nbytes)

        out = Event(self.sim)

        def _done(_e: Event) -> None:
            _handed_to_wire(_e)
            if reset:
                out.fail(TcpError("connection reset (injected)"))
            else:
                out.succeed(len(staged))

        syscall.callbacks.append(_done)
        return out

    def recv(self) -> Event:
        """Event yielding ``(payload, nbytes)`` after kernel RX processing."""
        got = self._inbox.get()
        out = Event(self.sim)
        cfg = self.network.config.tcp

        def _arrived(ev: Event) -> None:
            stack_delay = self.sim.timeout(cfg.kernel_rx_ns)
            stack_delay.callbacks.append(lambda _e: out.succeed(ev.value))

        got.callbacks.append(_arrived)
        return out

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking poll of the inbox (no RX cost charged; callers that
        poll must charge their own loop costs)."""
        return self._inbox.try_get()


class TcpStack:
    """Per-machine kernel networking state."""

    def __init__(self, sim: Simulator, network: "TcpNetwork",
                 machine: Machine):
        self.sim = sim
        self.network = network
        self.machine = machine
        self.wire = _Engine(sim, f"tcp{machine.machine_id}.wire")
        self.softirq = _Engine(sim, f"tcp{machine.machine_id}.softirq")
        self.listeners: dict[int, Store] = {}
        self.alive = True

    def listen(self, port: int) -> Store:
        """Open a listener; returns the accept queue of inbound connections."""
        if port in self.listeners:
            raise TcpError(f"port {port} already bound")
        q = Store(self.sim)
        self.listeners[port] = q
        return q

    def connect(self, remote: "TcpStack", port: int) -> Event:
        """Three-way-handshake; yields the client-side connection."""
        if not self.alive:
            raise TcpError("local stack down")
        out = Event(self.sim)
        rtt = 2 * self.network.prop_ns(self, remote)
        cfg = self.network.config.tcp
        handshake = self.sim.timeout(rtt + cfg.kernel_tx_ns + cfg.kernel_rx_ns)

        def _done(_e: Event) -> None:
            listener = remote.listeners.get(port)
            if listener is None or not remote.alive:
                out.fail(TcpError(f"connection refused to port {port}"))
                return
            client_side = TcpConnection(self.sim, self.network, self, remote)
            server_side = TcpConnection(self.sim, self.network, remote, self)
            client_side._wire(server_side)
            listener.put(server_side)
            out.succeed(client_side)

        handshake.callbacks.append(_done)
        return out

    def fail(self) -> None:
        self.alive = False


class TcpNetwork:
    """The IPoIB overlay over the same physical switch."""

    def __init__(self, sim: Simulator, config: SimConfig):
        self.sim = sim
        self.config = config
        self.stacks: list[TcpStack] = []
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`): when
        #: set, every send consults it for reset / short-read decisions.
        self.fault_injector = None

    def attach(self, machine: Machine) -> TcpStack:
        if machine.tcp is not None:
            raise ValueError(f"{machine!r} already has a TCP stack")
        stack = TcpStack(self.sim, self, machine)
        self.stacks.append(stack)
        machine.tcp = stack
        return stack

    def prop_ns(self, a: TcpStack, b: TcpStack) -> int:
        if a is b:
            return 2_000  # loopback skips the wire but not the stack
        return self.config.tcp.propagation_ns
