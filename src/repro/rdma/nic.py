"""The RDMA NIC model.

Each NIC has two serial engines — TX and RX — that give it a finite
operation rate and make payload serialization occupy the port.  All verbs
are orchestrated as callback chains (not processes) to keep the event count
per operation small; a 4-verb round trip costs ~6 calendar entries.

Two properties the higher layers depend on:

* **Per-QP in-order delivery** (RC): both engines are FIFO and the switch
  delay is constant, so writes posted on one QP land in the target region
  in post order.  The indicator-encapsulated message format (§4.2.1) is
  only correct because of this.
* **Connection-count sensitivity**: every op pays
  :meth:`~repro.config.NicConfig.qp_penalty_ns` for the current number of
  live QPs, reproducing the scale-up wall of §6.3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from ..config import SimConfig
from ..sim import MetricSet, Simulator, TimeWeighted
from ..sim.events import Event, PooledTimer
from .memory import AccessViolation, MemoryRegion
from .verbs import Completion, CompletionPool, Opcode, WcStatus

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.machine import Machine
    from .fabric import Fabric
    from .qp import QueuePair

__all__ = ["Nic", "NicDown"]


class NicDown(Exception):
    """Posting through a failed NIC."""


class _Engine:
    """A serial work engine: jobs run one at a time, FIFO.

    Job costs are computed when service *starts*, so load-dependent terms
    (QP cache penalty) reflect conditions at execution time.
    """

    __slots__ = ("sim", "busy", "_q", "_active", "_timer", "_done",
                 "_finish_cb")

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.busy = TimeWeighted(name, sim)
        self._q: Deque[tuple[Callable[[], int], Callable[[], None]]] = deque()
        self._active = False
        #: The engine is strictly serial, so one rearmable timer (plus one
        #: pre-bound finish callback) services every job it will ever run.
        self._timer = PooledTimer(sim)
        self._done: Optional[Callable[[], None]] = None
        self._finish_cb = self._finish

    def submit(self, cost_fn: Callable[[], int],
               done: Callable[[], None]) -> None:
        self._q.append((cost_fn, done))
        if not self._active:
            self._start_next()

    def _start_next(self) -> None:
        if not self._q:
            return
        cost_fn, done = self._q.popleft()
        self._active = True
        self.busy.set(1.0)
        self._done = done
        timer = self._timer
        if timer.callbacks is None:
            ev: Event = timer.rearm(cost_fn())
        else:  # pragma: no cover - serial engines keep the timer idle
            ev = self.sim.timeout(cost_fn())
        ev.callbacks.append(self._finish_cb)

    def _finish(self, _ev: Event) -> None:
        self._active = False
        self.busy.set(0.0)
        done, self._done = self._done, None
        done()
        self._start_next()

    @property
    def depth(self) -> int:
        return len(self._q)


class _WriteOp:
    """Pooled WQE state for the flat RDMA-Write path.

    The scalar :meth:`Nic.issue_write` builds ~6 closures per WQE; a
    pooled record carries the same state in ``__slots__`` with every
    callback pre-bound once at construction, so a recycled record posts a
    WQE with zero new function objects.  The record owns itself: it
    returns to its NIC's freelist only once every scheduled hop (tx, fly,
    rx, ack, retry timer, optional duplicate redelivery) has run, so a
    late callback can never observe a reused record.

    The hop sequence — and therefore every simulator event it creates —
    mirrors the scalar closure chain exactly; the schedule-digest parity
    tests hold both paths to bit-identical dispatch.
    """

    __slots__ = ("nic", "qp", "region", "offset", "data", "wr_id", "ev",
                 "fault", "prop", "peer_nic", "discount", "wc_pool",
                 "pending", "status", "cb_cost_tx", "cb_after_tx",
                 "cb_arrive", "cb_rx_cost", "cb_deliver", "cb_acked",
                 "cb_redeliver", "cb_expire")

    def __init__(self, nic: "Nic"):
        self.nic = nic
        # Pre-bound callbacks: one allocation each for the record's
        # lifetime, reused by every WQE it services.
        self.cb_cost_tx = self._cost_tx
        self.cb_after_tx = self._after_tx
        self.cb_arrive = self._arrive
        self.cb_rx_cost = self._rx_cost
        self.cb_deliver = self._deliver
        self.cb_acked = self._acked
        self.cb_redeliver = self._redeliver
        self.cb_expire = self._expire

    def begin(self, qp: "QueuePair", region: MemoryRegion, offset: int,
              data: bytes, wr_id: int, coalesced: bool,
              pool: Optional[CompletionPool]) -> Event:
        nic = self.nic
        sim = nic.sim
        ev = sim.event()
        if not nic.alive:
            nic._fail_completion(ev, Opcode.RDMA_WRITE,
                                 WcStatus.LOCAL_QP_ERR, wr_id, qp.qp_num,
                                 pool)
            nic._write_ops.append(self)
            return ev
        self.ev = ev
        self.qp = qp
        self.region = region
        self.offset = offset
        self.data = data
        self.wr_id = wr_id
        self.wc_pool = pool
        nic._c_w_ops.add()
        nic._c_w_bytes.add(len(data))
        (nic._c_w_coal if coalesced else nic._c_w_db).add()
        peer_nic = qp.peer.nic
        self.peer_nic = peer_nic
        self.prop = nic.fabric.prop_ns(nic, peer_nic)
        inj = nic.fabric.fault_injector
        self.fault = inj.rdma_write_fault(nic, qp, region, offset, data) \
            if inj is not None else None
        timer = sim.timeout(nic.config.fabric.retry_timeout_ns)
        timer.callbacks.append(self.cb_expire)
        self.discount = min(nic.cfg.doorbell_ns, nic.cfg.tx_op_ns) \
            if coalesced else 0
        self.pending = 2  # tx submit + retry timer
        nic.tx.submit(self.cb_cost_tx, self.cb_after_tx)
        return ev

    def _cost_tx(self) -> int:
        return max(0, self.nic._tx_cost(len(self.data)) - self.discount)

    def _after_tx(self) -> None:
        fly = self.nic.sim.timeout(
            self.prop + (self.fault.get("delay_ns", 0) if self.fault else 0))
        fly.callbacks.append(self.cb_arrive)

    def _arrive(self, _e: Event) -> None:
        peer_nic = self.peer_nic
        if not peer_nic.alive or (self.fault and self.fault.get("drop")):
            self._done()  # lost in flight; the retry timer ends the op
            return
        peer_nic.rx.submit(self.cb_rx_cost, self.cb_deliver)

    def _rx_cost(self) -> int:
        return self.peer_nic._rx_cost()

    def _deliver(self) -> None:
        fault = self.fault
        torn = fault.get("torn_bytes", 0) if fault else 0
        if torn:
            # Injected torn write (see the scalar path): a word-aligned
            # prefix lands, the RC ack never arrives, the retry timer
            # completes the op with RETRY_EXC.
            try:
                self.region.write(self.offset, self.data[:torn])
            except AccessViolation:
                pass
            self._done()
            return
        try:
            self.region.write(self.offset, self.data)
        except AccessViolation:
            status = WcStatus.REM_ACCESS_ERR
        else:
            status = WcStatus.SUCCESS
        sim = self.nic.sim
        if fault and fault.get("duplicate") and status is WcStatus.SUCCESS:
            redeliver = sim.timeout(2 * self.prop + self.peer_nic._rx_cost())
            redeliver.callbacks.append(self.cb_redeliver)
            self.pending += 1
        self.status = status  # carried to _acked with no per-hop closure
        ack = sim.timeout(self.prop)
        ack.callbacks.append(self.cb_acked)

    def _redeliver(self, _e: Event) -> None:
        try:
            self.region.write(self.offset, self.data)
        except AccessViolation:
            pass
        self._done()

    def _acked(self, _e: Event) -> None:
        ev = self.ev
        if not ev.triggered:
            status = self.status
            pool = self.wc_pool
            if pool is not None:
                wc = pool.acquire(Opcode.RDMA_WRITE, status, self.wr_id,
                                  byte_len=len(self.data),
                                  qp_num=self.qp.qp_num)
            else:
                wc = Completion(opcode=Opcode.RDMA_WRITE, status=status,
                                wr_id=self.wr_id, byte_len=len(self.data),
                                qp_num=self.qp.qp_num)
            ev.succeed(wc)
        self._done()

    def _expire(self, _t: Event) -> None:
        ev = self.ev
        if not ev.triggered:
            self.nic._fail_completion(ev, Opcode.RDMA_WRITE,
                                      WcStatus.RETRY_EXC, self.wr_id,
                                      self.qp.qp_num, self.wc_pool)
        self._done()

    def _done(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.ev = None
            self.qp = None
            self.region = None
            self.data = b""
            self.peer_nic = None
            self.fault = None
            self.wc_pool = None
            self.nic._write_ops.append(self)


class _ReadOp:
    """Pooled WQE state for the flat RDMA-Read path.

    Read-side twin of :class:`_WriteOp`: same freelist ownership rule
    (retire only after every scheduled hop has run) and the same
    hop-for-hop mirroring of the scalar closure chain.
    """

    __slots__ = ("nic", "qp", "region", "offset", "length", "wr_id", "ev",
                 "fault", "prop", "peer_nic", "discount", "wc_pool",
                 "pending", "data", "cb_cost_tx", "cb_after_tx",
                 "cb_arrive", "cb_responder_cost", "cb_responder_done",
                 "cb_response_cost", "cb_response_sent", "cb_back_home",
                 "cb_home_cost", "cb_complete", "cb_expire")

    def __init__(self, nic: "Nic"):
        self.nic = nic
        self.cb_cost_tx = self._cost_tx
        self.cb_after_tx = self._after_tx
        self.cb_arrive = self._arrive
        self.cb_responder_cost = self._responder_cost
        self.cb_responder_done = self._responder_done
        self.cb_response_cost = self._response_cost
        self.cb_response_sent = self._response_sent
        self.cb_back_home = self._back_home
        self.cb_home_cost = self._home_cost
        self.cb_complete = self._complete
        self.cb_expire = self._expire

    def begin(self, qp: "QueuePair", region: MemoryRegion, offset: int,
              length: int, wr_id: int, coalesced: bool,
              pool: Optional[CompletionPool]) -> Event:
        nic = self.nic
        sim = nic.sim
        ev = sim.event()
        if not nic.alive:
            nic._fail_completion(ev, Opcode.RDMA_READ,
                                 WcStatus.LOCAL_QP_ERR, wr_id, qp.qp_num,
                                 pool)
            nic._read_ops.append(self)
            return ev
        self.ev = ev
        self.qp = qp
        self.region = region
        self.offset = offset
        self.length = length
        self.wr_id = wr_id
        self.wc_pool = pool
        self.data = None
        nic._c_r_ops.add()
        nic._c_r_bytes.add(length)
        (nic._c_r_coal if coalesced else nic._c_r_db).add()
        peer_nic = qp.peer.nic
        self.peer_nic = peer_nic
        self.prop = nic.fabric.prop_ns(nic, peer_nic)
        inj = nic.fabric.fault_injector
        self.fault = inj.rdma_read_fault(nic, qp, region, offset, length) \
            if inj is not None else None
        timer = sim.timeout(nic.config.fabric.retry_timeout_ns)
        timer.callbacks.append(self.cb_expire)
        self.discount = min(nic.cfg.doorbell_ns, nic.cfg.tx_op_ns) \
            if coalesced else 0
        self.pending = 2  # tx submit + retry timer
        nic.tx.submit(self.cb_cost_tx, self.cb_after_tx)
        return ev

    def _cost_tx(self) -> int:
        return max(0, self.nic._tx_cost(0) - self.discount)

    def _after_tx(self) -> None:
        fly = self.nic.sim.timeout(self.prop)
        fly.callbacks.append(self.cb_arrive)

    def _arrive(self, _e: Event) -> None:
        peer_nic = self.peer_nic
        if not peer_nic.alive or (self.fault and self.fault.get("drop")):
            self._retire_hop()
            return
        peer_nic.rx.submit(self.cb_responder_cost, self.cb_responder_done)

    def _responder_cost(self) -> int:
        peer_nic = self.peer_nic
        return peer_nic._rx_cost(extra=peer_nic.cfg.read_responder_ns)

    def _responder_done(self) -> None:
        # The DMA engine snapshots host memory *now* — this is the
        # instant that matters for read/write races.
        try:
            self.data = self.region.read(self.offset, self.length)
        except AccessViolation:
            ev = self.ev
            if not ev.triggered:
                self.nic._fail_completion(ev, Opcode.RDMA_READ,
                                          WcStatus.REM_ACCESS_ERR,
                                          self.wr_id, self.qp.qp_num,
                                          self.wc_pool)
            self._retire_hop()
            return
        self.peer_nic.tx.submit(self.cb_response_cost, self.cb_response_sent)

    def _response_cost(self) -> int:
        return self.peer_nic._tx_cost(self.length)

    def _response_sent(self) -> None:
        delay = self.fault.get("delay_ns", 0) if self.fault else 0
        fly = self.nic.sim.timeout(self.prop + delay)
        fly.callbacks.append(self.cb_back_home)

    def _back_home(self, _e: Event) -> None:
        nic = self.nic
        if not nic.alive:
            self._retire_hop()
            return
        nic.rx.submit(self.cb_home_cost, self.cb_complete)

    def _home_cost(self) -> int:
        return self.nic._rx_cost()

    def _complete(self) -> None:
        ev = self.ev
        if not ev.triggered:
            pool = self.wc_pool
            if pool is not None:
                wc = pool.acquire(Opcode.RDMA_READ, WcStatus.SUCCESS,
                                  self.wr_id, byte_len=self.length,
                                  data=self.data, qp_num=self.qp.qp_num)
            else:
                wc = Completion(opcode=Opcode.RDMA_READ,
                                status=WcStatus.SUCCESS, wr_id=self.wr_id,
                                byte_len=self.length, data=self.data,
                                qp_num=self.qp.qp_num)
            ev.succeed(wc)
        self._retire_hop()

    def _expire(self, _t: Event) -> None:
        ev = self.ev
        if not ev.triggered:
            self.nic._fail_completion(ev, Opcode.RDMA_READ,
                                      WcStatus.RETRY_EXC, self.wr_id,
                                      self.qp.qp_num, self.wc_pool)
        self._retire_hop()

    def _retire_hop(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.ev = None
            self.qp = None
            self.region = None
            self.peer_nic = None
            self.fault = None
            self.wc_pool = None
            self.data = None
            self.nic._read_ops.append(self)


class Nic:
    """One RDMA adapter, attached to one machine, cabled to the fabric."""

    def __init__(self, sim: Simulator, machine: "Machine", nic_id: int,
                 config: SimConfig, fabric: "Fabric",
                 metrics: Optional[MetricSet] = None):
        self.sim = sim
        self.machine = machine
        self.nic_id = nic_id
        self.config = config
        self.cfg = config.nic
        self.fabric = fabric
        self.metrics = metrics or MetricSet(sim)
        self.tx = _Engine(sim, f"nic{nic_id}.tx")
        self.rx = _Engine(sim, f"nic{nic_id}.rx")
        self.qps: list["QueuePair"] = []
        self.alive = True
        # -- flat hot path (hydra.flat_hot_paths) --------------------------
        #: Freelist of CQE records for doorbell-batched chains; consumers
        #: that finish a chain release its records here for reuse.
        self.wc_pool = CompletionPool()
        self._flat = config.hydra.flat_hot_paths
        self._write_ops: list[_WriteOp] = []
        self._read_ops: list[_ReadOp] = []
        m = self.metrics
        self._c_w_ops = m.counter("rdma.write.ops")
        self._c_w_bytes = m.counter("rdma.write.bytes")
        self._c_w_coal = m.counter("rdma.write.coalesced")
        self._c_w_db = m.counter("rdma.write.doorbells")
        self._c_r_ops = m.counter("rdma.read.ops")
        self._c_r_bytes = m.counter("rdma.read.bytes")
        self._c_r_coal = m.counter("rdma.read.coalesced")
        self._c_r_db = m.counter("rdma.read.doorbells")

    # -- lifecycle ---------------------------------------------------------
    @property
    def active_qps(self) -> int:
        return len(self.qps)

    def fail(self) -> None:
        """Take the NIC (and effectively its machine's RDMA path) down."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def register(self, region: MemoryRegion) -> MemoryRegion:
        """Register a memory region for remote access; assigns its rkey."""
        return self.fabric.register(self, region)

    # -- cost terms ----------------------------------------------------------
    def _penalty(self) -> int:
        return self.cfg.qp_penalty_ns(self.active_qps)

    def _tx_cost(self, payload: int, extra: int = 0) -> int:
        return (self.cfg.tx_op_ns + self._penalty() + extra
                + self.config.fabric.serialization_ns(payload))

    def _rx_cost(self, extra: int = 0) -> int:
        return self.cfg.rx_op_ns + self._penalty() + extra

    # -- verb orchestration ----------------------------------------------
    # Each issue_* returns an Event that fires with a Completion.  The
    # caller (QueuePair) has already validated QP state.

    def _fail_completion(self, ev: Event, op: Opcode, status: WcStatus,
                         wr_id: int, qp_num: int,
                         pool: Optional[CompletionPool] = None) -> None:
        if pool is not None:
            ev.succeed(pool.acquire(op, status, wr_id, qp_num=qp_num))
        else:
            ev.succeed(Completion(opcode=op, status=status, wr_id=wr_id,
                                  qp_num=qp_num))

    def _arm_retry_timer(self, ev: Event, op: Opcode, wr_id: int,
                         qp_num: int) -> None:
        """Complete with RETRY_EXC if nothing else finishes the op first."""
        timer = self.sim.timeout(self.config.fabric.retry_timeout_ns)

        def _expire(_t: Event) -> None:
            if not ev.triggered:
                self._fail_completion(ev, op, WcStatus.RETRY_EXC, wr_id,
                                      qp_num)

        timer.callbacks.append(_expire)

    def issue_write(self, qp: "QueuePair", region: MemoryRegion, offset: int,
                    data: bytes, wr_id: int, coalesced: bool = False,
                    pool: Optional[CompletionPool] = None) -> Event:
        """One RDMA Write.  ``coalesced`` WQEs ride an earlier WQE's
        doorbell and skip the per-op MMIO cost (``doorbell_ns``).

        ``pool``: CQE freelist the completion record is drawn from (flat
        hot path); ``None`` allocates a fresh :class:`Completion`.
        """
        if self._flat:
            ops = self._write_ops
            rec = ops.pop() if ops else _WriteOp(self)
            return rec.begin(qp, region, offset, data, wr_id, coalesced,
                             pool)
        ev = self.sim.event()
        op = Opcode.RDMA_WRITE
        if not self.alive:
            self._fail_completion(ev, op, WcStatus.LOCAL_QP_ERR, wr_id,
                                  qp.qp_num)
            return ev
        self.metrics.counter("rdma.write.ops").add()
        self.metrics.counter("rdma.write.bytes").add(len(data))
        if coalesced:
            self.metrics.counter("rdma.write.coalesced").add()
        else:
            self.metrics.counter("rdma.write.doorbells").add()
        peer_nic: "Nic" = qp.peer.nic
        prop = self.fabric.prop_ns(self, peer_nic)
        inj = self.fabric.fault_injector
        fault = inj.rdma_write_fault(self, qp, region, offset, data) \
            if inj is not None else None
        self._arm_retry_timer(ev, op, wr_id, qp.qp_num)

        def after_tx() -> None:
            delay = fault.get("delay_ns", 0) if fault else 0
            fly = self.sim.timeout(prop + delay)
            fly.callbacks.append(lambda _e: arrive())

        def arrive() -> None:
            if not peer_nic.alive:
                return  # silently lost; retry timer fires
            if fault and fault.get("drop"):
                return  # injected loss; retry timer fires
            peer_nic.rx.submit(lambda: peer_nic._rx_cost(), deliver)

        def deliver() -> None:
            torn = fault.get("torn_bytes", 0) if fault else 0
            if torn:
                # Injected torn write: a word-aligned prefix of the payload
                # lands (DMA is word-granular, so the occupancy/guardian
                # words themselves are never half-written) but the RC ack
                # never arrives — the retry timer ends the op with
                # RETRY_EXC.  Readers must reject the partial frame via
                # the indicator tail / guardian checks.
                try:
                    region.write(offset, data[:torn])
                except AccessViolation:
                    pass
                return
            try:
                region.write(offset, data)
            except AccessViolation:
                status = WcStatus.REM_ACCESS_ERR
            else:
                status = WcStatus.SUCCESS
            if fault and fault.get("duplicate") \
                    and status is WcStatus.SUCCESS:
                # A retransmitted packet applied twice at the target: the
                # same bytes land again shortly after the first delivery.
                redeliver = self.sim.timeout(2 * prop + peer_nic._rx_cost())

                def _redeliver(_e: Event) -> None:
                    try:
                        region.write(offset, data)
                    except AccessViolation:
                        pass

                redeliver.callbacks.append(_redeliver)
            ack = self.sim.timeout(prop)

            def _acked(_e: Event) -> None:
                if not ev.triggered:
                    ev.succeed(Completion(opcode=op, status=status,
                                          wr_id=wr_id, byte_len=len(data),
                                          qp_num=qp.qp_num))

            ack.callbacks.append(_acked)

        discount = min(self.cfg.doorbell_ns, self.cfg.tx_op_ns) \
            if coalesced else 0
        self.tx.submit(lambda: max(0, self._tx_cost(len(data)) - discount),
                       after_tx)
        return ev

    def issue_read(self, qp: "QueuePair", region: MemoryRegion, offset: int,
                   length: int, wr_id: int, coalesced: bool = False,
                   pool: Optional[CompletionPool] = None) -> Event:
        """One RDMA Read.  ``coalesced`` WQEs ride an earlier WQE's
        doorbell and skip the per-op MMIO cost (``doorbell_ns``).

        ``pool``: CQE freelist the completion record is drawn from (flat
        hot path); ``None`` allocates a fresh :class:`Completion`.
        """
        if self._flat:
            ops = self._read_ops
            rec = ops.pop() if ops else _ReadOp(self)
            return rec.begin(qp, region, offset, length, wr_id, coalesced,
                             pool)
        ev = self.sim.event()
        op = Opcode.RDMA_READ
        if not self.alive:
            self._fail_completion(ev, op, WcStatus.LOCAL_QP_ERR, wr_id,
                                  qp.qp_num)
            return ev
        self.metrics.counter("rdma.read.ops").add()
        self.metrics.counter("rdma.read.bytes").add(length)
        if coalesced:
            self.metrics.counter("rdma.read.coalesced").add()
        else:
            self.metrics.counter("rdma.read.doorbells").add()
        peer_nic: "Nic" = qp.peer.nic
        prop = self.fabric.prop_ns(self, peer_nic)
        inj = self.fabric.fault_injector
        fault = inj.rdma_read_fault(self, qp, region, offset, length) \
            if inj is not None else None
        self._arm_retry_timer(ev, op, wr_id, qp.qp_num)
        state: dict[str, object] = {}

        def after_tx() -> None:
            fly = self.sim.timeout(prop)
            fly.callbacks.append(lambda _e: arrive())

        def arrive() -> None:
            if not peer_nic.alive:
                return
            if fault and fault.get("drop"):
                return  # response never generated; retry timer fires
            peer_nic.rx.submit(
                lambda: peer_nic._rx_cost(extra=peer_nic.cfg.read_responder_ns),
                responder_done,
            )

        def responder_done() -> None:
            # The DMA engine snapshots host memory *now* — this is the
            # instant that matters for read/write races.
            try:
                state["data"] = region.read(offset, length)
            except AccessViolation:
                if not ev.triggered:
                    self._fail_completion(ev, op, WcStatus.REM_ACCESS_ERR,
                                          wr_id, qp.qp_num)
                return
            peer_nic.tx.submit(lambda: peer_nic._tx_cost(length), response_sent)

        def response_sent() -> None:
            delay = fault.get("delay_ns", 0) if fault else 0
            fly = self.sim.timeout(prop + delay)
            fly.callbacks.append(lambda _e: back_home())

        def back_home() -> None:
            if not self.alive:
                return
            self.rx.submit(lambda: self._rx_cost(), complete)

        def complete() -> None:
            if not ev.triggered:
                ev.succeed(Completion(opcode=op, status=WcStatus.SUCCESS,
                                      wr_id=wr_id, byte_len=length,
                                      data=state["data"],  # type: ignore[arg-type]
                                      qp_num=qp.qp_num))

        discount = min(self.cfg.doorbell_ns, self.cfg.tx_op_ns) \
            if coalesced else 0
        self.tx.submit(lambda: max(0, self._tx_cost(0) - discount), after_tx)
        return ev

    def _batch_collector(self, batch: Event, n: int) -> Callable[[int], Callable[[Event], None]]:
        """Per-WQE accumulator feeding one batch completion event.

        Returns a factory: ``collector(i)`` is the callback that records
        WQE ``i``'s Completion into a flat result array; the last one to
        land succeeds ``batch`` with the whole array (request order).
        """
        results: list = [None] * n
        state = {"remaining": n}

        sim = self.sim

        def collector(i: int) -> Callable[[Event], None]:
            def _cb(ev: Event) -> None:
                wc = ev._value
                # Stamp the CQE arrival so consumers of the batch event
                # can still model an incremental poll of the chain.
                wc.ns = sim.now
                results[i] = wc
                state["remaining"] -= 1
                if not state["remaining"]:
                    batch.succeed(results)
            return _cb

        return collector

    def issue_read_batch(self, qp: "QueuePair", requests: list) -> Event:
        """Post several RDMA Reads behind one coalesced doorbell.

        ``requests`` entries are ``(region, offset, length, wr_id)``; a
        ``None`` region (rkey that no longer resolves against this QP's
        peer, e.g. after a failover re-homed the shard) completes
        immediately with ``LOCAL_QP_ERR`` instead of poisoning the rest of
        the chain.  The first resolvable WQE pays the full initiator cost;
        the rest skip the doorbell write.

        Returns **one** event that fires with a flat ``list[Completion]``
        in request order once the whole chain has finished; every WQE is
        individually bounded by the retry timer, so the batch event always
        fires.
        """
        batch = self.sim.event()
        n = len(requests)
        if n == 0:
            batch.succeed([])
            return batch
        collector = self._batch_collector(batch, n)
        pool = self.wc_pool if self._flat else None
        first = True
        for i, (region, offset, length, wr_id) in enumerate(requests):
            if region is None:
                ev = self.sim.event()
                self._fail_completion(ev, Opcode.RDMA_READ,
                                      WcStatus.LOCAL_QP_ERR, wr_id,
                                      qp.qp_num, pool)
            else:
                ev = self.issue_read(qp, region, offset, length, wr_id,
                                     coalesced=not first, pool=pool)
                first = False
            ev.callbacks.append(collector(i))
        return batch

    def issue_write_batch(self, qp: "QueuePair", requests: list) -> Event:
        """Post several RDMA Writes behind one coalesced doorbell.

        The write-side twin of :meth:`issue_read_batch`: ``requests``
        entries are ``(region, offset, data, wr_id)``; a ``None`` region
        (stale rkey) completes immediately with ``LOCAL_QP_ERR`` while
        the rest of the chain still posts.  The first resolvable WQE pays
        the full initiator cost; the rest skip the doorbell write.  RC
        keeps the chain in post order at the target, which is what lets a
        shard land a batch of slot responses before the final doorbell.

        Returns **one** event firing with ``list[Completion]`` in request
        order once the whole chain has completed.
        """
        batch = self.sim.event()
        n = len(requests)
        if n == 0:
            batch.succeed([])
            return batch
        collector = self._batch_collector(batch, n)
        pool = self.wc_pool if self._flat else None
        first = True
        for i, (region, offset, data, wr_id) in enumerate(requests):
            if region is None:
                ev = self.sim.event()
                self._fail_completion(ev, Opcode.RDMA_WRITE,
                                      WcStatus.LOCAL_QP_ERR, wr_id,
                                      qp.qp_num, pool)
            else:
                ev = self.issue_write(qp, region, offset, data, wr_id,
                                      coalesced=not first, pool=pool)
                first = False
            ev.callbacks.append(collector(i))
        return batch

    def issue_ud_send(self, src_qp, dst_qp, data: bytes,
                      wr_id: int) -> Event:
        """Connectionless datagram send (see :mod:`repro.rdma.ud`)."""
        from .ud import issue_ud_send
        return issue_ud_send(self, src_qp, dst_qp, data, wr_id)

    def issue_send(self, qp: "QueuePair", data: bytes, wr_id: int) -> Event:
        ev = self.sim.event()
        op = Opcode.SEND
        if not self.alive:
            self._fail_completion(ev, op, WcStatus.LOCAL_QP_ERR, wr_id,
                                  qp.qp_num)
            return ev
        self.metrics.counter("rdma.send.ops").add()
        self.metrics.counter("rdma.send.bytes").add(len(data))
        peer_qp: "QueuePair" = qp.peer
        peer_nic: "Nic" = peer_qp.nic
        prop = self.fabric.prop_ns(self, peer_nic)
        self._arm_retry_timer(ev, op, wr_id, qp.qp_num)

        def after_tx() -> None:
            fly = self.sim.timeout(prop)
            fly.callbacks.append(lambda _e: arrive())

        def arrive() -> None:
            if not peer_nic.alive:
                return
            peer_nic.rx.submit(
                lambda: peer_nic._rx_cost(extra=peer_nic.cfg.send_recv_extra_ns),
                deliver,
            )

        def deliver() -> None:
            if not peer_qp.recv_queue:
                status = WcStatus.RNR_RETRY_EXC
            else:
                recv_wr_id = peer_qp.recv_queue.popleft()
                peer_qp.recv_cq.push(
                    Completion(opcode=Opcode.RECV, status=WcStatus.SUCCESS,
                               wr_id=recv_wr_id, byte_len=len(data),
                               data=data, qp_num=peer_qp.qp_num)
                )
                status = WcStatus.SUCCESS
            ack = self.sim.timeout(prop)

            def _acked(_e: Event) -> None:
                if not ev.triggered:
                    ev.succeed(Completion(opcode=op, status=status,
                                          wr_id=wr_id, byte_len=len(data),
                                          qp_num=qp.qp_num))

            ack.callbacks.append(_acked)

        self.tx.submit(lambda: self._tx_cost(len(data)), after_tx)
        return ev

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Nic {self.nic_id} qps={self.active_qps} " \
               f"{'up' if self.alive else 'DOWN'}>"
