"""Reliable-connected queue pairs.

A QP is the application-facing handle: it validates destinations, resolves
remote pointers against the fabric's registration table, and hands the op
to its NIC.  Receive queues live here (two-sided mode only).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, TYPE_CHECKING

from ..sim.events import Event
from .cq import CompletionQueue
from .memory import MemoryRegion
from .verbs import ReadWorkRequest, RemotePointer, WriteWorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from .nic import Nic

__all__ = ["QueuePair", "QpError"]


class QpError(Exception):
    """Misuse of a queue pair (bad peer, unresolvable rkey, dead QP)."""


class QueuePair:
    """One end of an RC connection."""

    def __init__(self, sim, nic: "Nic", qp_num: int):
        self.sim = sim
        self.nic = nic
        self.qp_num = qp_num
        self.peer: "QueuePair" = None  # type: ignore[assignment]
        self.send_cq = CompletionQueue(sim, f"qp{qp_num}.scq")
        self.recv_cq = CompletionQueue(sim, f"qp{qp_num}.rcq")
        self.recv_queue: Deque[int] = deque()
        self.connected = False
        self._wr_seq = 0

    # -- wiring ------------------------------------------------------------
    def _connect(self, peer: "QueuePair") -> None:
        self.peer = peer
        self.connected = True
        self.nic.qps.append(self)

    def destroy(self) -> None:
        """Tear the QP down (e.g. on connection close / process death)."""
        if self in self.nic.qps:
            self.nic.qps.remove(self)
        self.connected = False

    def force_error(self) -> None:
        """Drive the QP pair into the error state (spontaneous flap).

        Models a transport-level RC error (retry exhaustion, CRC storm,
        port bounce) that kills one connection without taking the NIC
        down: both endpoints become unusable, subsequent posts raise
        :class:`QpError`, and the application must reconnect.  Used by
        the chaos fault injector.
        """
        if self.peer is not None:
            self.peer.destroy()
        self.destroy()

    @property
    def usable(self) -> bool:
        """True while posts on this QP can still make progress.

        A QP stops being usable when either endpoint tears it down
        (``destroy``) or either NIC dies — a retrying client probes this
        before reusing a cached connection so it reconnects up front
        instead of burning an operation timeout on a black-holed post.
        """
        return (self.connected and self.peer is not None
                and self.nic.alive and self.peer.nic.alive)

    def _next_wr(self, wr_id: int) -> int:
        if wr_id:
            return wr_id
        self._wr_seq += 1
        return self._wr_seq

    def _resolve(self, rptr: RemotePointer) -> MemoryRegion:
        nic, region = self.nic.fabric.lookup(rptr.rkey)
        if nic is not self.peer.nic:
            raise QpError(
                f"rkey {rptr.rkey} belongs to nic {nic.nic_id}, but this QP "
                f"connects to nic {self.peer.nic.nic_id}"
            )
        return region

    def _check_connected(self) -> None:
        if not self.connected or self.peer is None:
            raise QpError("queue pair is not connected")

    # -- verbs ---------------------------------------------------------------
    def post_write(self, rptr: RemotePointer, data: bytes,
                   wr_id: int = 0) -> Event:
        """One-sided RDMA Write of ``data`` at the remote pointer.

        Returns the completion event; the write is visible at the target at
        remote-delivery time (earlier than the initiator's completion).
        """
        self._check_connected()
        if len(data) > rptr.length:
            raise QpError(
                f"write of {len(data)}B exceeds remote extent {rptr.length}B"
            )
        region = self._resolve(rptr)
        return self.nic.issue_write(self, region, rptr.offset, data,
                                    self._next_wr(wr_id))

    def post_read(self, rptr: RemotePointer, wr_id: int = 0) -> Event:
        """One-sided RDMA Read of the full remote-pointer extent."""
        self._check_connected()
        region = self._resolve(rptr)
        return self.nic.issue_read(self, region, rptr.offset, rptr.length,
                                   self._next_wr(wr_id))

    def post_read_batch(self, requests) -> Event:
        """Post a chain of one-sided Reads with one coalesced doorbell.

        ``requests`` may mix :class:`RemotePointer` and
        :class:`ReadWorkRequest` entries.  Returns **one** batch event
        that fires with a flat ``list[Completion]`` in request order once
        the whole chain has completed.  An entry whose rkey does not
        resolve against this QP's peer completes with ``LOCAL_QP_ERR`` —
        the remaining WQEs in the chain still post (the caller demotes the
        failed key individually, exactly as it would a dead item).
        """
        self._check_connected()
        prepared = []
        for req in requests:
            if isinstance(req, RemotePointer):
                req = ReadWorkRequest(rptr=req)
            try:
                region = self._resolve(req.rptr)
            except QpError:
                region = None
            prepared.append((region, req.rptr.offset, req.rptr.length,
                             self._next_wr(req.wr_id)))
        return self.nic.issue_read_batch(self, prepared)

    def post_write_batch(self, requests) -> Event:
        """Post a chain of one-sided Writes with one coalesced doorbell.

        The write-side twin of :meth:`post_read_batch`: ``requests`` may
        mix :class:`WriteWorkRequest` entries and bare
        ``(RemotePointer, bytes)`` pairs.  Returns **one** batch event
        firing with ``list[Completion]`` in request order once the whole
        chain has completed.  An oversized payload or an entry whose rkey
        does not resolve against this QP's peer completes with
        ``LOCAL_QP_ERR`` — the remaining WQEs in the chain still post.
        RC delivery keeps the chain in post order at the target, so a
        shard can land all of a sweep's responses for one connection in
        slot order before the single doorbell.
        """
        self._check_connected()
        prepared = []
        for req in requests:
            if not isinstance(req, WriteWorkRequest):
                rptr, data = req
                req = WriteWorkRequest(rptr=rptr, data=data)
            region = None
            if len(req.data) <= req.rptr.length:
                try:
                    region = self._resolve(req.rptr)
                except QpError:
                    region = None
            prepared.append((region, req.rptr.offset, req.data,
                             self._next_wr(req.wr_id)))
        return self.nic.issue_write_batch(self, prepared)

    def post_send(self, data: bytes, wr_id: int = 0) -> Event:
        """Two-sided Send; consumes a posted receive at the peer."""
        self._check_connected()
        return self.nic.issue_send(self, bytes(data), self._next_wr(wr_id))

    def post_recv(self, wr_id: int = 0) -> None:
        """Post a receive WQE (two-sided mode)."""
        self.recv_queue.append(self._next_wr(wr_id))

    def __repr__(self) -> str:  # pragma: no cover
        peer = self.peer.qp_num if self.peer else None
        return f"<QP {self.qp_num} nic={self.nic.nic_id} peer={peer}>"
