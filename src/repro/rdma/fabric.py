"""The switched fabric: NIC attachment, registration table, RC connections.

One :class:`Fabric` models the single Mellanox IS5030 switch of the paper's
testbed: constant propagation between any two NICs, cheaper NIC-internal
loopback for co-located processes.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from ..config import SimConfig
from ..hardware.machine import Machine
from ..sim import MetricSet, Simulator
from .memory import MemoryRegion
from .nic import Nic
from .qp import QpError, QueuePair
from .ud import UdQueuePair

__all__ = ["Fabric"]


class Fabric:
    """A single-switch RDMA network."""

    def __init__(self, sim: Simulator, config: SimConfig,
                 metrics: Optional[MetricSet] = None):
        self.sim = sim
        self.config = config
        self.metrics = metrics or MetricSet(sim)
        self.nics: list[Nic] = []
        self._rkeys = count(start=1)
        self._qp_nums = count(start=1)
        self._rkey_table: dict[int, tuple[Nic, MemoryRegion]] = {}
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`): when
        #: set, every RDMA Write/Read consults it for drop / delay /
        #: duplicate / torn-write decisions before touching the wire.
        self.fault_injector = None
        import numpy as np
        self._ud_rng = np.random.default_rng(config.seed ^ 0xD06F00D)

    # -- topology -----------------------------------------------------------
    def attach(self, machine: Machine) -> Nic:
        """Cable a machine into the switch; gives it its NIC."""
        if machine.nic is not None:
            raise ValueError(f"{machine!r} already has a NIC")
        nic = Nic(self.sim, machine, len(self.nics), self.config, self,
                  metrics=self.metrics)
        self.nics.append(nic)
        machine.nic = nic
        return nic

    def prop_ns(self, a: Nic, b: Nic) -> int:
        if a is b:
            return self.config.fabric.loopback_ns
        return self.config.fabric.propagation_ns

    # -- registration ---------------------------------------------------------
    def register(self, nic: Nic, region: MemoryRegion) -> MemoryRegion:
        if region.rkey is not None:
            raise ValueError(f"{region!r} is already registered")
        region.rkey = next(self._rkeys)
        region.owner_nic = nic
        self._rkey_table[region.rkey] = (nic, region)
        return region

    def deregister(self, region: MemoryRegion) -> None:
        if region.rkey is None:
            return
        self._rkey_table.pop(region.rkey, None)
        region.rkey = None
        region.owner_nic = None

    def lookup(self, rkey: int) -> tuple[Nic, MemoryRegion]:
        try:
            return self._rkey_table[rkey]
        except KeyError:
            raise QpError(f"unknown rkey {rkey}") from None

    # -- connections ---------------------------------------------------------
    def connect(self, nic_a: Nic, nic_b: Nic) -> tuple[QueuePair, QueuePair]:
        """Create a reliable-connected QP pair between two NICs.

        Connecting a NIC to itself is allowed (co-located client/server).
        """
        qa = QueuePair(self.sim, nic_a, next(self._qp_nums))
        qb = QueuePair(self.sim, nic_b, next(self._qp_nums))
        qa._connect(qb)
        qb._connect(qa)
        return qa, qb

    def create_ud_qp(self, nic: Nic) -> UdQueuePair:
        """A connectionless UD endpoint (not counted against the QP cache)."""
        return UdQueuePair(self.sim, nic)

    def ud_dropped(self) -> bool:
        """Sample the configured UD loss probability (deterministic rng)."""
        p = self.config.nic.ud_drop_probability
        if p <= 0:
            return False
        return bool(self._ud_rng.random() < p)

    def disconnect(self, qp: QueuePair) -> None:
        if qp.peer is not None:
            qp.peer.destroy()
        qp.destroy()
