"""Verb-layer types: opcodes, work completions, remote pointers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

__all__ = ["Opcode", "WcStatus", "Completion", "CompletionPool",
           "RemotePointer", "ReadWorkRequest", "WriteWorkRequest",
           "RdmaError"]


class Opcode(Enum):
    RDMA_WRITE = auto()
    RDMA_READ = auto()
    SEND = auto()
    RECV = auto()


class WcStatus(Enum):
    SUCCESS = auto()
    #: Remote access error (bad rkey / out-of-bounds).
    REM_ACCESS_ERR = auto()
    #: Receiver had no posted receive (RNR retries exhausted).
    RNR_RETRY_EXC = auto()
    #: Peer NIC/machine unreachable (retry exceeded) — failover trigger.
    RETRY_EXC = auto()
    #: QP transitioned to error state locally.
    LOCAL_QP_ERR = auto()


class RdmaError(Exception):
    """Raised into a process that waits on a failed completion."""

    def __init__(self, completion: "Completion"):
        super().__init__(f"RDMA {completion.opcode.name} failed: "
                         f"{completion.status.name}")
        self.completion = completion


@dataclass(slots=True)
class Completion:
    """A work completion (CQE)."""

    opcode: Opcode
    status: WcStatus
    wr_id: int = 0
    byte_len: int = 0
    #: For RDMA_READ and RECV completions: the fetched / received bytes.
    data: Optional[bytes] = None
    #: QP number the completion belongs to.
    qp_num: int = -1
    #: Sim time the CQE landed (stamped by batch collection; -1 when the
    #: completion was delivered through its own event and the consumer
    #: already knows the arrival time).
    ns: int = -1
    #: Freelist bookkeeping: True while the record is checked out of a
    #: :class:`CompletionPool` (never set on plain constructions).
    _live: bool = field(default=False, init=False, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


class CompletionPool:
    """Freelist of recycled :class:`Completion` records.

    The flat hot paths (``hydra.flat_hot_paths``) deliver completion
    chains as pooled records instead of allocating a fresh CQE object per
    WQE.  ``acquire`` hands out a record that is guaranteed not to sit in
    any other in-flight chain (records return to the freelist only through
    an explicit ``release``); consumers that have finished reading a chain
    release its records so the next doorbell batch can reuse them.  A
    record that is never released is simply garbage-collected — correct,
    just not recycled — so fire-and-forget posts need no bookkeeping.
    """

    __slots__ = ("_free", "allocated", "recycled")

    def __init__(self) -> None:
        self._free: list[Completion] = []
        #: Lifetime stats, surfaced by the freelist tests and benches.
        self.allocated = 0
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, opcode: Opcode, status: WcStatus, wr_id: int = 0,
                byte_len: int = 0, data: Optional[bytes] = None,
                qp_num: int = -1, ns: int = -1) -> Completion:
        free = self._free
        if free:
            wc = free.pop()
            self.recycled += 1
            wc.opcode = opcode
            wc.status = status
            wc.wr_id = wr_id
            wc.byte_len = byte_len
            wc.data = data
            wc.qp_num = qp_num
            wc.ns = ns
        else:
            self.allocated += 1
            wc = Completion(opcode, status, wr_id, byte_len, data, qp_num, ns)
        wc._live = True
        return wc

    def release(self, wc: Completion) -> None:
        """Return ``wc`` to the freelist.

        Raises on double-release (or on a record that never came from a
        pool): a released record may already be live in another chain, so
        recycling it twice would alias two in-flight CQEs.
        """
        if not wc._live:
            raise ValueError("completion released twice or not pool-owned")
        wc._live = False
        wc.data = None
        self._free.append(wc)

    def release_all(self, wcs) -> None:
        for wc in wcs:
            self.release(wc)


@dataclass(frozen=True)
class RemotePointer:
    """A one-sided-access capability: (rkey, offset, length).

    HydraDB servers hand these to clients for RDMA-Read GETs (§4.2.2);
    the replication log exposes one for the whole ring (§5.2).
    """

    rkey: int
    offset: int
    length: int

    def slice(self, rel_offset: int, length: int) -> "RemotePointer":
        if rel_offset < 0 or rel_offset + length > self.length:
            raise ValueError("slice outside remote pointer extent")
        return RemotePointer(self.rkey, self.offset + rel_offset, length)


@dataclass(frozen=True)
class ReadWorkRequest:
    """One entry of a doorbell-coalesced RDMA-Read batch.

    ``QueuePair.post_read_batch`` accepts a chain of these (or bare
    :class:`RemotePointer` targets); the NIC rings one doorbell for the
    whole chain and every WQE after the first skips the MMIO write
    (``NicConfig.doorbell_ns``).
    """

    rptr: RemotePointer
    wr_id: int = 0


@dataclass(frozen=True)
class WriteWorkRequest:
    """One entry of a doorbell-coalesced RDMA-Write batch.

    The write-side twin of :class:`ReadWorkRequest`:
    ``QueuePair.post_write_batch`` accepts a chain of these, rings one
    doorbell for the whole chain, and — because RC delivers per-QP in
    post order — guarantees the writes land at the target in chain
    order.  HydraDB shards use this to flush every response of one sweep
    to a connection with a single MMIO write.
    """

    rptr: RemotePointer
    data: bytes
    wr_id: int = 0
