"""Completion queues.

HydraDB's data path never blocks on a CQ — shards poll request buffers in
memory — but the Send/Recv baseline mode (§6.2) and the RAMCloud baseline
drain CQs, and unsignaled-write bookkeeping uses them for flow control.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..sim import Gate, Simulator
from ..sim.events import Event
from .verbs import Completion

__all__ = ["CompletionQueue"]


class CompletionQueue:
    """An unbounded FIFO of completions with optional blocking wait."""

    def __init__(self, sim: Simulator, name: str = "cq"):
        self.sim = sim
        self.name = name
        self._entries: Deque[Completion] = deque()
        self._gate = Gate(sim)
        #: Persistent push notifications (simulation doorbells for pollers).
        self.on_push: list = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        self._entries.append(completion)
        self._gate.fire()
        for cb in self.on_push:
            cb(self)

    def poll(self, max_entries: int = 16) -> list[Completion]:
        """Non-blocking drain of up to ``max_entries`` completions."""
        out: list[Completion] = []
        self.poll_into(out, max_entries)
        return out

    def poll_into(self, out: list[Completion],
                  max_entries: int = 16) -> int:
        """Allocation-free :meth:`poll` into a caller-owned scratch list.

        Companion to the flat hot paths' scratch-buffer discipline: a
        poll loop can reuse one list per drain instead of allocating.
        Entries may be pooled records (``CompletionPool``); they pass
        through by reference and releasing them back to their pool
        remains the consumer's job.  Returns the number appended.
        """
        n = 0
        while self._entries and n < max_entries:
            out.append(self._entries.popleft())
            n += 1
        return n

    def poll_one(self) -> Optional[Completion]:
        return self._entries.popleft() if self._entries else None

    def wait(self) -> Event:
        """Event that fires when the CQ is (or becomes) non-empty.

        The waiter must still :meth:`poll`; multiple waiters may race for
        the same entry, exactly like event-channel wakeups on real verbs.
        """
        if self._entries:
            ev = Event(self.sim)
            ev.succeed(None)
            return ev
        return self._gate.wait()
