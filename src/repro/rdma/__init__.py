"""Simulated RDMA fabric: NICs, queue pairs, registered memory, verbs.

Substitutes for the paper's Mellanox ConnectX-3 / IS5030 InfiniBand testbed
(see DESIGN.md §2).  Registered regions are real bytearrays, so one-sided
accesses observe true memory contents at DMA time.
"""

from .cq import CompletionQueue
from .fabric import Fabric
from .memory import AccessViolation, MemoryRegion
from .nic import Nic, NicDown
from .qp import QpError, QueuePair
from .tcp import TcpConnection, TcpError, TcpNetwork, TcpStack
from .ud import UD_MTU, UdQueuePair
from .verbs import (Completion, CompletionPool, Opcode, RdmaError,
                    ReadWorkRequest, RemotePointer, WcStatus,
                    WriteWorkRequest)

__all__ = [
    "CompletionQueue",
    "Fabric",
    "MemoryRegion",
    "AccessViolation",
    "Nic",
    "NicDown",
    "QueuePair",
    "QpError",
    "UdQueuePair",
    "UD_MTU",
    "TcpNetwork",
    "TcpStack",
    "TcpConnection",
    "TcpError",
    "Completion",
    "CompletionPool",
    "Opcode",
    "WcStatus",
    "RemotePointer",
    "ReadWorkRequest",
    "WriteWorkRequest",
    "RdmaError",
]
