"""Coordination: ZooKeeper-like ensemble and the SWAT failover team."""

from .swat import HaControl, ShardAgent, SwatTeam
from .zookeeper import WatchEvent, ZkError, ZkSession, ZooKeeper

__all__ = [
    "ZooKeeper",
    "ZkSession",
    "ZkError",
    "WatchEvent",
    "SwatTeam",
    "ShardAgent",
    "HaControl",
]
