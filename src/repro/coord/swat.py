"""SWAT — Status Watcher and reAct Team (§5.1).

An independent group of processes that watches the ZooKeeper view of shard
liveness and reacts to status changes:

* **Leader election**: members race for ephemeral-sequential znodes under
  ``/swat/members``; the lowest sequence leads, the rest watch their
  predecessor and take over on its death.
* **Failure reaction**: every primary shard has a :class:`ShardAgent`
  holding an ephemeral znode under ``/shards``; when the shard (or its
  machine) dies, the session expires, the znode vanishes, and the SWAT
  leader promotes a secondary: its merge thread stops, a fresh primary
  shard is started around the *same* store, remaining secondaries are
  resynchronized and re-attached, and the routing metadata is republished.
* **Node join**: a new server's shards are added to the consistent-hash
  ring after the keys they now own are migrated out of the old owners.
"""

from __future__ import annotations

from typing import Optional

from ..core.api import HydraCluster
from ..core.shard import Shard
from ..protocol import Op
from ..sim import Interrupt, Simulator
from .zookeeper import ZkError, ZkSession, ZooKeeper

__all__ = ["SwatTeam", "ShardAgent", "HaControl"]

SHARDS_PATH = "/shards"
ROUTING_PATH = "/routing"
MEMBERS_PATH = "/swat/members"


class ShardAgent:
    """Holds a shard's ephemeral liveness znode while the shard lives."""

    def __init__(self, sim: Simulator, zk: ZooKeeper, shard: Shard):
        self.sim = sim
        self.zk = zk
        self.shard = shard
        self.session: Optional[ZkSession] = None
        self.proc = sim.process(self._run(), name=f"agent.{shard.shard_id}")

    def _run(self):
        self.session = self.zk.connect(owner=self.shard.shard_id)
        path = f"{SHARDS_PATH}/{self.shard.shard_id}"
        while self.shard.alive:
            try:
                yield from self.session.create(path, ephemeral=True)
                break
            except ZkError:
                if not self.session.alive:
                    # Session expired mid-registration (e.g. injected
                    # ensemble-side expiry).  Retire; the SWAT leader will
                    # notice the missing znode and re-register the shard.
                    return
                # A predecessor's ephemeral is still lingering; wait for
                # the ensemble to clear it.
                if self.zk.node_exists(path):
                    yield self.zk.watch(path, "deleted")
        # Heartbeat for as long as the shard process is alive; a crash
        # stops the heartbeats and the session times out at the ensemble.
        yield from self.session.keepalive(
            while_alive=lambda: self.shard.alive and self.shard.nic.alive)


class SwatTeam:
    """The SWAT member group plus its reaction logic."""

    def __init__(self, sim: Simulator, cluster: HydraCluster, zk: ZooKeeper,
                 n_members: int = 3):
        self.sim = sim
        self.cluster = cluster
        self.zk = zk
        self.config = cluster.config
        self.n_members = n_members
        self.leader_id: Optional[int] = None
        self.failovers = 0
        self.member_procs = []
        self._member_alive = [True] * n_members

    def start(self) -> None:
        """Bootstrap the znode tree and launch every SWAT member."""
        boot = self.zk.connect("swat.boot")
        # Bootstrap the static tree synchronously (no contention at t=0).
        for path in ("/swat", MEMBERS_PATH, SHARDS_PATH, ROUTING_PATH):
            if not self.zk.node_exists(path):
                self.zk._create_node(path, b"", None)
        del boot
        for mid in range(self.n_members):
            self.member_procs.append(
                self.sim.process(self._member(mid), name=f"swat.m{mid}"))

    def kill_member(self, mid: int) -> None:
        """Failure-inject a SWAT member (leader death -> re-election)."""
        self._member_alive[mid] = False
        proc = self.member_procs[mid]
        if proc.is_alive:
            proc.interrupt("killed")

    def spawn_member(self) -> int:
        """Add a replacement member (keeps quorum across leader churn).

        Chaos schedules that repeatedly kill the leader would otherwise
        drain the fixed member pool; operationally this is a supervisor
        restarting the watcher process.
        """
        mid = len(self._member_alive)
        self._member_alive.append(True)
        self.member_procs.append(
            self.sim.process(self._member(mid), name=f"swat.m{mid}"))
        return mid

    # -- membership / election ------------------------------------------------
    def _member(self, mid: int):
        try:
            session = self.zk.connect(owner=f"swat.m{mid}")
            self.sim.process(
                session.keepalive(
                    while_alive=lambda: self._member_alive[mid]),
                name=f"swat.m{mid}.hb")
            my_path = yield from session.create(
                f"{MEMBERS_PATH}/m-", ephemeral=True, sequential=True)
            my_name = my_path.rsplit("/", 1)[1]
            while self._member_alive[mid]:
                members = yield from session.get_children(MEMBERS_PATH)
                if members and members[0] == my_name:
                    self.leader_id = mid
                    yield from self._lead(session)
                    return
                # Watch my predecessor; on its death, re-evaluate.
                idx = members.index(my_name)
                predecessor = f"{MEMBERS_PATH}/{members[idx - 1]}"
                yield self.zk.watch(predecessor, "deleted")
        except Interrupt:
            pass
        except ZkError:
            # This member's session expired at the ensemble (injected
            # storm or partition): its ephemeral is already gone, so the
            # survivors' predecessor watches fire and re-elect without
            # us.  Retire cleanly rather than crashing the sim.
            self._member_alive[mid] = False
            if self.leader_id == mid:
                self.leader_id = None

    # -- leader duties ---------------------------------------------------------
    def _lead(self, session: ZkSession):
        # Publish the initial routing map.
        for shard_id in self.cluster.routing.shard_ids():
            path = f"{ROUTING_PATH}/{shard_id}"
            if not self.zk.node_exists(path):
                yield from session.create(path, self._route_blob(shard_id))
        pending_register: set[str] = set()
        while session.alive:
            registered = set(
                (yield from session.get_children(SHARDS_PATH)))
            pending_register -= registered
            expected = set(self.cluster.routing.shard_ids())
            missing = sorted(expected - registered - pending_register)
            for shard_id in missing:
                yield from self._react_to_failure(session, shard_id)
                # The replacement agent's registration is in flight; do
                # not react to this shard again until it lands.
                pending_register.add(shard_id)
            if not missing:
                yield self.zk.watch(SHARDS_PATH, "children")

    def _route_blob(self, shard_id: str) -> bytes:
        # The blob carries the routing generation so observers can order
        # republications without comparing machine ids.
        shard = self.cluster.routing.resolve(shard_id)
        return (f"machine={shard.machine.machine_id};"
                f"gen={self.cluster.routing.generation}").encode()

    def _react_to_failure(self, session: ZkSession, shard_id: str):
        """Promote a secondary and republish routing (§5.1)."""
        react_start = self.sim.now
        yield self.sim.timeout(self.config.coord.swat_react_ns)
        old_primary = self.cluster.routing.resolve(shard_id)
        if old_primary.alive and old_primary.nic.alive:
            # Transient flap (agent session expired but shard is healthy):
            # re-register instead of promoting.
            ShardAgent(self.sim, self.zk, old_primary)
            return
        candidates = [
            sec for sec in self.cluster.secondaries.get(shard_id, [])
            if sec.machine.nic.alive
        ]
        if not candidates:
            # Correlated primary+secondary death.  With a durable log the
            # shard is rebuilt from persistent media (replay + ring
            # salvage + route republication); without one, the data is
            # gone and we can only count the loss.
            if getattr(self.cluster, "durable_logs", {}).get(shard_id):
                new_primary = yield from self.cluster.recover_shard(shard_id)
                try:
                    yield from session.set_data(
                        f"{ROUTING_PATH}/{shard_id}",
                        self._route_blob(shard_id))
                except ZkError:  # pragma: no cover - routing node races
                    pass
                ShardAgent(self.sim, self.zk, new_primary)
                self.failovers += 1
                self.cluster.metrics.counter("swat.failovers").add()
                self.cluster.metrics.counter("swat.log_recoveries").add()
                self.cluster.metrics.tally("swat.promotion_ns").observe(
                    self.sim.now - react_start)
                return
            self.cluster.metrics.counter("swat.data_loss").add()
            return
        promoted = candidates[0]
        remaining = candidates[1:]
        promoted.stop()
        # Acked-but-unmerged ring records must survive the handover.
        promoted.promote_drain()
        new_primary = Shard(self.sim, self.config, shard_id,
                            promoted.machine, promoted.core,
                            metrics=self.cluster.metrics,
                            store=promoted.store)
        new_primary.start()
        # Re-wire remaining secondaries to the new primary.
        if remaining:
            from ..replication import LogReplicator
            replicator = LogReplicator(self.sim, self.config, new_primary,
                                       metrics=self.cluster.metrics)
            for sec in remaining:
                nbytes = yield from self._resync(new_primary, sec)
                sec.rebind()
                replicator.add_secondary(sec)
                del nbytes
            self.cluster.replicators[shard_id] = replicator
        else:
            self.cluster.replicators.pop(shard_id, None)
        self.cluster.secondaries[shard_id] = remaining
        self.cluster.routing.set(shard_id, new_primary)
        try:
            yield from session.set_data(f"{ROUTING_PATH}/{shard_id}",
                                        self._route_blob(shard_id))
        except ZkError:  # pragma: no cover - routing node races
            pass
        ShardAgent(self.sim, self.zk, new_primary)
        self.failovers += 1
        self.cluster.metrics.counter("swat.failovers").add()
        #: Reaction-to-republication latency (excludes detection, i.e. the
        #: ZK session expiry that triggered _lead's missing-shard sweep).
        self.cluster.metrics.tally("swat.promotion_ns").observe(
            self.sim.now - react_start)

    def _resync(self, primary: Shard, sec):
        """Bulk state transfer: make ``sec``'s store match the new primary."""
        snapshot = primary.store.dump()
        stale = set(sec.store.dump()) - set(snapshot)
        nbytes = sum(len(k) + len(v) for k, v in snapshot.items())
        # One streaming transfer over the fabric plus per-item apply cost.
        transfer_ns = (self.config.fabric.serialization_ns(nbytes)
                       + 2 * self.config.fabric.propagation_ns
                       + 1_000 * max(1, len(snapshot)))
        yield self.sim.timeout(transfer_ns)
        for key in stale:
            sec.store.remove(key)
        for key, value in snapshot.items():
            version = primary.store.get(key).version
            sec.store.apply(Op.PUT, key, value, version=version)
        return nbytes

    # -- node join ---------------------------------------------------------
    def join_server(self, n_shards: int, table_kind: str = "compact"):
        """Bring a new server machine into the cluster (run as a process).

        Keys whose ring ownership moves to the new shards are migrated
        before the ring is updated; concurrent writes to migrating arcs
        are assumed quiescent (the paper does not specify an online
        migration protocol).
        """
        from ..core.server import HydraServer
        cluster = self.cluster
        machine = cluster._new_machine(cores_per_numa=8)
        cluster.server_machines.append(machine)
        server = HydraServer(self.sim, self.config, machine,
                             server_id=f"s{len(cluster.servers)}",
                             n_shards=n_shards, metrics=cluster.metrics,
                             table_kind=table_kind)
        cluster.servers.append(server)
        server.start()
        # Compute the future ring to find which keys move.
        future = type(cluster.ring)(vnodes=cluster.ring.vnodes)
        for sid in cluster.ring.members:
            future.add(sid)
        new_ids = []
        for shard in server.shards:
            future.add(shard.shard_id)
            new_ids.append(shard.shard_id)
            cluster.routing.set(shard.shard_id, shard)
        moved_bytes = 0
        moves = 0
        for old_id in list(cluster.ring.members):
            old_shard = cluster.routing.resolve(old_id)
            for key, value in old_shard.store.dump().items():
                new_owner = future.owner_of_key(key)
                if new_owner == old_id or new_owner not in new_ids:
                    continue
                version = old_shard.store.get(key).version
                cluster.routing.resolve(new_owner).store.apply(
                    Op.PUT, key, value, version=version)
                old_shard.store.remove(key)
                # Keep the donor's secondaries in step: the migration-away
                # is a mutation they must also apply, or a later failover
                # would resurrect orphaned keys.
                if old_shard.replicator is not None:
                    rep_cost, wait_ev = old_shard.replicator.replicate(
                        Op.DELETE, key, b"", 0)
                    yield self.sim.timeout(rep_cost)
                    if wait_ev is not None:
                        yield wait_ev
                moved_bytes += len(key) + len(value)
                moves += 1
        yield self.sim.timeout(
            self.config.fabric.serialization_ns(moved_bytes)
            + 1_000 * max(1, moves))
        for shard in server.shards:
            cluster.ring.add(shard.shard_id)
            ShardAgent(self.sim, self.zk, shard)
        self.cluster.metrics.counter("swat.joins").add()
        return server


class HaControl:
    """Bundles ZooKeeper + SWAT + shard agents for a cluster."""

    def __init__(self, cluster: HydraCluster, n_swat: int = 3):
        self.cluster = cluster
        self.zk = ZooKeeper(cluster.sim, cluster.config.coord)
        self.swat = SwatTeam(cluster.sim, cluster, self.zk, n_members=n_swat)
        self.agents: list[ShardAgent] = []

    def start(self) -> None:
        """Start SWAT and register a liveness agent per primary shard."""
        self.swat.start()
        for shard in self.cluster.routing.live_shards():
            self.agents.append(ShardAgent(self.cluster.sim, self.zk, shard))
