"""A ZooKeeper-like coordination service (§5.1).

Models the 3–5 node ensemble HydraDB deploys for membership: a znode tree
with versioned data, ephemeral and sequential nodes, sessions expired by
missed heartbeats, and one-shot watches.  Every mutating or reading
operation pays ``zk_op_ns`` (a quorum round on the ensemble); the ensemble
itself is abstracted — HydraDB only consumes its client semantics.

All operations are generator methods: ``path = yield from zk.create(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from ..config import CoordConfig
from ..sim import Simulator
from ..sim.events import Event

__all__ = ["ZooKeeper", "ZkSession", "ZkError", "WatchEvent"]


class ZkError(Exception):
    """NodeExists / NoNode / NotEmpty / BadVersion / SessionExpired."""


@dataclass
class WatchEvent:
    """Delivered to a one-shot watch when its condition fires."""

    path: str
    kind: str  # "created" | "deleted" | "data" | "children"


@dataclass
class _Znode:
    data: bytes = b""
    version: int = 0
    ephemeral_session: Optional[int] = None
    children: set[str] = field(default_factory=set)
    seq_counter: int = 0


class _Session:
    def __init__(self, session_id: int, owner: str, now: int):
        self.session_id = session_id
        self.owner = owner
        self.last_heartbeat = now
        self.alive = True


class ZooKeeper:
    """The ensemble: znode tree + sessions + watches."""

    def __init__(self, sim: Simulator, config: CoordConfig):
        self.sim = sim
        self.config = config
        self._nodes: dict[str, _Znode] = {"/": _Znode()}
        self._sessions: dict[int, _Session] = {}
        self._session_ids = count(1)
        #: (path, kind) -> list of one-shot events.
        self._watches: dict[tuple[str, str], list[Event]] = {}
        #: Optional chaos hook (:class:`repro.chaos.FaultInjector`): when
        #: set, watch delivery may be delayed and sessions force-expired.
        self.fault_injector = None
        self._expiry_proc = sim.process(self._expiry_loop(), name="zk.expiry")

    # -- sessions ---------------------------------------------------------
    def connect(self, owner: str = "") -> "ZkSession":
        """Open a new session (heartbeat it or it expires)."""
        sid = next(self._session_ids)
        self._sessions[sid] = _Session(sid, owner, self.sim.now)
        return ZkSession(self, sid)

    def _session(self, sid: int) -> _Session:
        sess = self._sessions.get(sid)
        if sess is None or not sess.alive:
            raise ZkError(f"session {sid} expired")
        return sess

    def _expire_session(self, sess: _Session) -> None:
        sess.alive = False
        for path in [p for p, n in self._nodes.items()
                     if n.ephemeral_session == sess.session_id]:
            if path in self._nodes:  # may have been removed via a parent
                self._delete_node(path)

    def _expiry_loop(self):
        while True:
            yield self.sim.timeout(self.config.heartbeat_ns)
            deadline = self.sim.now - self.config.session_timeout_ns
            for sess in list(self._sessions.values()):
                if sess.alive and sess.last_heartbeat < deadline:
                    self._expire_session(sess)

    # -- watches ---------------------------------------------------------
    def watch(self, path: str, kind: str) -> Event:
        """One-shot watch; fires with a :class:`WatchEvent`."""
        if kind not in ("created", "deleted", "data", "children"):
            raise ValueError(f"unknown watch kind {kind!r}")
        ev = Event(self.sim)
        self._watches.setdefault((path, kind), []).append(ev)
        return ev

    def _fire(self, path: str, kind: str) -> None:
        events = self._watches.pop((path, kind), [])
        if not events:
            return
        delay = 0
        if self.fault_injector is not None:
            delay = self.fault_injector.watch_delay(path, kind)
        if delay > 0:
            # Injected slow watch delivery: the notification sat in the
            # ensemble/client channel before reaching the watcher.
            timer = self.sim.timeout(delay)

            def _deliver(_e: Event) -> None:
                for ev in events:
                    ev.succeed(WatchEvent(path=path, kind=kind))

            timer.callbacks.append(_deliver)
            return
        for ev in events:
            ev.succeed(WatchEvent(path=path, kind=kind))

    # -- chaos helpers -----------------------------------------------------
    def expire_sessions_of(self, owner: str) -> int:
        """Force-expire every live session registered by ``owner``.

        Models the ensemble dropping a client (partition, GC pause past
        the session timeout).  The owner's ephemerals vanish and its next
        operation raises ``SessionExpired``.  Returns how many sessions
        were expired.  Chaos-injection entry point.
        """
        expired = 0
        for sess in list(self._sessions.values()):
            if sess.alive and sess.owner == owner:
                self._expire_session(sess)
                expired += 1
        return expired

    # -- tree primitives (no latency; sessions add it) ----------------------
    @staticmethod
    def _parent(path: str) -> str:
        parent = path.rsplit("/", 1)[0]
        return parent or "/"

    def _create_node(self, path: str, data: bytes,
                     ephemeral_session: Optional[int]) -> None:
        if path in self._nodes:
            raise ZkError(f"NodeExists: {path}")
        parent = self._parent(path)
        pnode = self._nodes.get(parent)
        if pnode is None:
            raise ZkError(f"NoNode (parent): {parent}")
        self._nodes[path] = _Znode(data=data,
                                   ephemeral_session=ephemeral_session)
        pnode.children.add(path.rsplit("/", 1)[1])
        self._fire(path, "created")
        self._fire(parent, "children")

    def _delete_node(self, path: str) -> None:
        node = self._nodes.get(path)
        if node is None:
            raise ZkError(f"NoNode: {path}")
        if node.children:
            raise ZkError(f"NotEmpty: {path}")
        del self._nodes[path]
        parent = self._parent(path)
        if parent in self._nodes:
            self._nodes[parent].children.discard(path.rsplit("/", 1)[1])
        self._fire(path, "deleted")
        self._fire(parent, "children")

    def node_exists(self, path: str) -> bool:
        """Instant (no-latency) existence check — test/debug helper."""
        return path in self._nodes


class ZkSession:
    """A client handle; all ops are generators costing one quorum round."""

    def __init__(self, zk: ZooKeeper, session_id: int):
        self.zk = zk
        self.session_id = session_id

    @property
    def alive(self) -> bool:
        """Whether the session is still live at the ensemble."""
        sess = self.zk._sessions.get(self.session_id)
        return bool(sess and sess.alive)

    def _op_delay(self):
        return self.zk.sim.timeout(self.zk.config.zk_op_ns)

    def heartbeat(self) -> None:
        """Instant local stamp (the wire cost rides on other ops/pings)."""
        self.zk._session(self.session_id).last_heartbeat = self.zk.sim.now

    def keepalive(self, while_alive=lambda: True):
        """Run as a process: heartbeat until ``while_alive()`` is False."""
        while while_alive() and self.alive:
            self.heartbeat()
            yield self.zk.sim.timeout(self.zk.config.heartbeat_ns)

    def close(self):
        """Gracefully end the session (ephemerals removed immediately)."""
        yield self._op_delay()
        sess = self.zk._sessions.get(self.session_id)
        if sess is not None and sess.alive:
            self.zk._expire_session(sess)

    # -- operations --------------------------------------------------------
    def create(self, path: str, data: bytes = b"", ephemeral: bool = False,
               sequential: bool = False):
        """Create a znode; returns the (possibly sequence-suffixed) path."""
        yield self._op_delay()
        self.zk._session(self.session_id)  # validates liveness
        if sequential:
            parent = self.zk._parent(path)
            pnode = self.zk._nodes.get(parent)
            if pnode is None:
                raise ZkError(f"NoNode (parent): {parent}")
            pnode.seq_counter += 1
            path = f"{path}{pnode.seq_counter:010d}"
        self.zk._create_node(
            path, data, self.session_id if ephemeral else None)
        return path

    def delete(self, path: str):
        """Delete a childless znode."""
        yield self._op_delay()
        self.zk._session(self.session_id)
        self.zk._delete_node(path)

    def set_data(self, path: str, data: bytes,
                 expected_version: Optional[int] = None):
        """Write znode data (optionally compare-and-set on version)."""
        yield self._op_delay()
        self.zk._session(self.session_id)
        node = self.zk._nodes.get(path)
        if node is None:
            raise ZkError(f"NoNode: {path}")
        if expected_version is not None and node.version != expected_version:
            raise ZkError(f"BadVersion: {path} is at {node.version}")
        node.data = data
        node.version += 1
        self.zk._fire(path, "data")
        return node.version

    def get_data(self, path: str):
        """Returns ``(data, version)``."""
        yield self._op_delay()
        self.zk._session(self.session_id)
        node = self.zk._nodes.get(path)
        if node is None:
            raise ZkError(f"NoNode: {path}")
        return node.data, node.version

    def get_children(self, path: str):
        """Sorted child names of a znode."""
        yield self._op_delay()
        self.zk._session(self.session_id)
        node = self.zk._nodes.get(path)
        if node is None:
            raise ZkError(f"NoNode: {path}")
        return sorted(node.children)

    def exists(self, path: str):
        """Whether the znode exists (one quorum round)."""
        yield self._op_delay()
        self.zk._session(self.session_id)
        return path in self.zk._nodes
