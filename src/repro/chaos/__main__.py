"""CLI entry point: ``python -m repro.chaos --profile torn --seed 11``."""

import sys

from .harness import main

sys.exit(main())
