"""Deterministic fault injection + chaos soak harness.

The chaos layer turns the simulator's determinism into a testing weapon:
a :class:`FaultSchedule` (pure data, derived from a seed) says what
breaks and when, a :class:`FaultInjector` samples it against live
traffic through one narrow hook per layer, and the soak harness
(:mod:`repro.chaos.harness`) checks the acked-write / guardian-word /
typed-error invariants under the resulting storm.  Identical seeds
replay identical storms, byte for byte — ``schedule_hash`` proves it.
"""

from .injector import FaultInjector
from .harness import WriteOracle, chaos_soak, run_soak
from .schedule import (FaultAction, FaultSchedule, FaultWindow, PROFILES,
                       build_schedule)

__all__ = [
    "FaultAction",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "PROFILES",
    "WriteOracle",
    "build_schedule",
    "chaos_soak",
    "run_soak",
]
