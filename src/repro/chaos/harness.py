"""Chaos soak harness: mixed workload + seeded storm + acked-write oracle.

``run_soak`` builds a replicated, HA-enabled cluster, attaches a
:class:`~repro.chaos.FaultInjector` driven by one named storm profile,
runs a paced GET/PUT/DELETE workload across it, and checks the paper's
resilience contract the hard way:

* **no acked write lost** — after the storm every key is sealed with a
  fresh PUT and the merged store contents must match every seal exactly;
* **no torn or reclaimed value surfaced** — every GET result must be a
  value some client actually wrote (guardian words + indicator framing
  are what make this hold under torn-write storms);
* **typed, bounded failure** — an operation either completes within the
  client deadline (plus one attempt's slack) or raises a
  :class:`~repro.core.errors.HydraError` subclass; anything else is a
  harness failure;
* **convergence** — post-storm throughput recovers to >= 80% of the
  pre-storm window and the seal round completes.

Keys are partitioned per client so each key has a single writer; the
oracle then only needs per-key attempt sets: a key whose last mutation
*failed* is indeterminate (the write may or may not have landed before
the fault) and any attempted value is legal until the next acked
mutation re-determines it.

Everything — storm, workload, verdict — is a pure function of
``(profile, seed)``; ``chaos_soak`` re-runs one cell to prove it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..config import QosConfig, SimConfig
from ..core.api import HydraCluster
from ..core.errors import HydraError
from ..sim import StreamRegistry
from .injector import FaultInjector
from .schedule import FaultSchedule, PROFILES, build_schedule

__all__ = ["run_soak", "chaos_soak", "SOAK_SEEDS"]

_MS = 1_000_000

#: Default soak grid for the bench artifact: distinct seeded schedules
#: covering torn-write, gray-failure, ZK-expiry, stale-pointer, tenant,
#: and correlated dual-failure storms, plus a server-variant matrix —
#: each cell is ``(profile, seed[, variant[, replicas]])``.  Sub-sharded
#: instances reject replication hooks (one endpoint fronts many
#: sub-tables), so their cells run with ``replicas=0``; the other
#: variant cells keep the replicated baseline, and one cell raises the
#: replica count past one.
SOAK_SEEDS: Sequence[tuple] = (
    ("torn", 11), ("gray", 23), ("zk", 37), ("flap", 53), ("mixed", 71),
    ("stale", 89), ("tenant", 101), ("dualfail", 113),
    ("torn", 131, "subshard", 0), ("gray", 149, "pipelined", 1),
    ("mixed", 167, "plain", 2),
)


def _profile_overrides(profile: str) -> dict[str, dict]:
    """Per-profile config-section deltas — pure in ``profile``.

    The ``stale`` storm only bites if leases lapse and reclaim runs
    *during* the 700 ms soak, so it shrinks both far below their
    defaults, drops the traversal fan-out gate so the soak's single-key
    GETs exercise the one-sided index walk, and shortens the read
    horizon to 4x the op timeout — the window injected Read delays
    (<= 2 ms) race against.

    The ``dualfail`` storm kills a primary *and* its secondaries, so it
    enables the durable write-behind tier in ``ack_on_flush`` mode (an
    ack means the write is group-committed to the PM log — the only
    copy guaranteed to survive the correlated crash) and arms the
    client lease guard against the storm's injected clock skew
    (±500 µs, see ``build_schedule``).
    """
    if profile == "stale":
        return {
            "hydra": {"lease_min_ns": 5 * _MS, "lease_max_ns": 20 * _MS,
                      "lease_renew_period_ns": 10 * _MS},
            "traversal": {"min_fanout": 1, "read_horizon_ns": 20 * _MS},
            "memory": {"reclaim_period_ns": 2 * _MS},
        }
    if profile == "dualfail":
        return {
            "durability": {"enabled": True, "ack_mode": "ack_on_flush"},
            "client": {"lease_skew_guard_ns": 600_000},
        }
    return {}


class _KeyState:
    __slots__ = ("attempted", "determinate", "value", "delete_attempted")

    def __init__(self):
        self.attempted: set = set()
        self.determinate = True
        self.value: Optional[bytes] = None
        self.delete_attempted = False


class WriteOracle:
    """Tracks, per key, which values could legally be observed."""

    def __init__(self):
        self._state: dict[bytes, _KeyState] = {}

    def _st(self, key: bytes) -> _KeyState:
        st = self._state.get(key)
        if st is None:
            st = self._state[key] = _KeyState()
        return st

    def begin_write(self, key: bytes, value: bytes) -> None:
        self._st(key).attempted.add(value)

    def end_write(self, key: bytes, value: bytes) -> None:
        # An acked mutation re-determines the key: stale frames cannot
        # re-execute later (failed attempts always drop their connection,
        # and a frame the shard consumed ran before this op was issued).
        st = self._st(key)
        st.value = value
        st.determinate = True
        st.attempted = {value}
        st.delete_attempted = False

    def begin_delete(self, key: bytes) -> None:
        self._st(key).delete_attempted = True

    def end_delete(self, key: bytes) -> None:
        st = self._st(key)
        st.value = None
        st.determinate = True
        st.attempted = set()

    def fail_mutation(self, key: bytes) -> None:
        self._st(key).determinate = False

    def check_read(self, key: bytes, result: Optional[bytes]) -> bool:
        """Is ``result`` a value this key could legally hold?"""
        st = self._st(key)
        if st.determinate:
            return result == st.value
        if result is None:
            return st.delete_attempted
        return result in st.attempted


def _make_value(key: bytes, cid: int, seq, value_bytes: int) -> bytes:
    return f"{key.decode()}|c{cid}|{seq}".encode().ljust(value_bytes, b".")


def run_soak(profile: str = "mixed", seed: int = 42, scale: float = 1.0,
             n_clients: int = 4, n_keys: int = 48, value_bytes: int = 48,
             deadline_ms: int = 100, variant: str = "plain",
             replicas: int = 1,
             schedule: Optional[FaultSchedule] = None) -> dict:
    """One soak cell: one profile, one seed, one verdict row.

    ``variant`` selects the server ablation the storm lands on —
    ``plain``, ``subshard`` (one endpoint, two executor cores, no
    replication hooks), or ``pipelined`` (shared-store worker pool) —
    and ``replicas`` the secondary-ring count; both flow into the
    verdict row so the matrix stays one flat table.
    """
    if variant not in ("plain", "subshard", "pipelined"):
        raise ValueError(f"unknown soak variant {variant!r}")
    storm_start = 150 * _MS
    storm_end = 450 * _MS
    end_at = 700 * _MS
    window_ns = 100 * _MS
    think_ns = max(20_000, int(100_000 / max(scale, 1e-3)))
    deadline_ns = deadline_ms * _MS

    if schedule is None:
        schedule = build_schedule(profile, seed, storm_start, storm_end)
    extras = _profile_overrides(schedule.name)
    variant_extra = {"subshard": {"subshards": 2},
                     "pipelined": {"pipelined_shards": True}}.get(
                         variant, {})
    cfg = SimConfig(seed=seed).with_overrides(
        replication={"replicas": replicas},
        coord={"heartbeat_ns": 50 * _MS, "session_timeout_ns": 200 * _MS},
        hydra={"msg_slots_per_conn": 8, **variant_extra,
               **extras.get("hydra", {})},
        client={"op_timeout_ns": 5 * _MS, "max_inflight_per_conn": 4,
                **extras.get("client", {})},
        traversal=extras.get("traversal", {}),
        memory=extras.get("memory", {}),
        durability=extras.get("durability", {}),
    )
    cluster = HydraCluster(config=cfg, n_server_machines=2,
                           shards_per_server=1, n_client_machines=2)
    cluster.enable_ha()
    cluster.start()
    sim = cluster.sim
    injector = FaultInjector(sim, schedule).attach(cluster)
    injector.start()

    wl = StreamRegistry(seed)
    keys = [f"chaos{i:05d}".encode() for i in range(n_keys)]
    oracle = WriteOracle()
    completions: list[int] = []
    storm_lat: list[int] = []
    stats = {"ops": 0, "typed_errors": 0, "untyped_errors": 0,
             "corrupt_values": 0, "deadline_violations": 0,
             "seal_failures": 0}
    sealed: dict[bytes, bytes] = {}
    # One attempt's worth of slack past the deadline budget: the final
    # retry may be mid-flight when the budget lapses.
    slack_ns = cfg.client.op_timeout_ns + 10 * _MS

    def worker(cid: int, client):
        rng = wl.stream(f"chaos.workload.c{cid}")
        my_keys = keys[cid::n_clients]
        seq = 0
        # Preload (before the storm window opens) so every key has an
        # acked, replicated baseline value.
        for key in my_keys:
            value = _make_value(key, cid, "pre", value_bytes)
            oracle.begin_write(key, value)
            yield from client.put(key, value)
            oracle.end_write(key, value)
        while sim.now < end_at:
            key = my_keys[int(rng.integers(0, len(my_keys)))]
            r = float(rng.random())
            t0 = sim.now
            kind = "get" if r < 0.5 else ("put" if r < 0.9 else "delete")
            try:
                if kind == "get":
                    result = yield from client.get(key)
                    if not oracle.check_read(key, result):
                        stats["corrupt_values"] += 1
                elif kind == "put":
                    seq += 1
                    value = _make_value(key, cid, seq, value_bytes)
                    oracle.begin_write(key, value)
                    yield from client.put(key, value)
                    oracle.end_write(key, value)
                else:
                    oracle.begin_delete(key)
                    yield from client.delete(key)
                    oracle.end_delete(key)
            except HydraError:
                stats["typed_errors"] += 1
                if kind != "get":
                    oracle.fail_mutation(key)
            except Exception:  # noqa: BLE001 - the invariant being tested
                stats["untyped_errors"] += 1
                if kind != "get":
                    oracle.fail_mutation(key)
            dur = sim.now - t0
            if dur > deadline_ns + slack_ns:
                stats["deadline_violations"] += 1
            if t0 >= storm_start and t0 < storm_end:
                storm_lat.append(dur)
            stats["ops"] += 1
            completions.append(sim.now)
            yield sim.timeout(think_ns)
        # Seal round: a fresh acked PUT per key pins the expected final
        # store contents for the lost-acked-write check.
        for key in my_keys:
            value = _make_value(key, cid, "seal", value_bytes)
            for _attempt in range(3):
                try:
                    oracle.begin_write(key, value)
                    yield from client.put(key, value)
                    oracle.end_write(key, value)
                    sealed[key] = value
                    break
                except HydraError:
                    oracle.fail_mutation(key)
            else:
                stats["seal_failures"] += 1

    def aggressor(client):
        """Tenant-profile antagonist: closed-loop batched churn on its
        own keyspace through the QoS layer, sharing the oracle workers'
        connections.  Typed errors are its expected weather (that is the
        point of admission + shed); anything untyped trips the same
        typed-errors-only verdict as the oracle workload."""
        agg_keys = [f"aggr{i:05d}".encode() for i in range(n_keys)]
        value = b"A" * value_bytes
        j = 0
        while sim.now < end_at:
            pairs = [(agg_keys[(j + k) % n_keys], value) for k in range(8)]
            try:
                yield from client.put_many(pairs)
            except HydraError:
                yield sim.timeout(think_ns)
            except Exception:  # noqa: BLE001 - the invariant being tested
                stats["untyped_errors"] += 1
                yield sim.timeout(think_ns)
            j += 8

    if schedule.name == "tenant":
        # The oracle workload becomes a well-behaved weighted tenant and
        # two aggressor handles saturate the same connections, so the
        # storm's flaps and losses land on DRR-arbitrated pipes.
        clients = [cluster.client(c % 2, deadline_us=deadline_ms * 1000,
                                  tenant="wb", qos=QosConfig(weight=4.0))
                   for c in range(n_clients)]
        agg_clients = [cluster.client(m, deadline_us=deadline_ms * 1000,
                                      tenant="agg") for m in range(2)]
    else:
        clients = [cluster.client(c % 2, deadline_us=deadline_ms * 1000)
                   for c in range(n_clients)]
        agg_clients = []
    cluster.run(*[worker(c, cl) for c, cl in enumerate(clients)],
                *[aggressor(cl) for cl in agg_clients])

    # -- verdict ---------------------------------------------------------
    store: dict[bytes, bytes] = {}
    for sid in cluster.routing.shard_ids():
        shard = cluster.routing.resolve(sid)
        # Sub-sharded instances spread keys over per-core sub-tables.
        dump = getattr(shard, "dump_all", shard.store.dump)
        store.update(dump())
    lost = sum(1 for k, v in sealed.items() if store.get(k) != v)

    completions.sort()
    pre = [t for t in completions
           if storm_start - window_ns <= t < storm_start]
    post = [t for t in completions if t >= end_at - window_ns]
    marks = [storm_start] + [t for t in completions if t >= storm_start]
    blackout = max(b - a for a, b in zip(marks, marks[1:])) if len(
        marks) > 1 else 0
    pre_kops = len(pre) / window_ns * 1e6
    post_kops = len(post) / window_ns * 1e6
    p99 = float(np.percentile(storm_lat, 99)) if storm_lat else 0.0
    counters = cluster.metrics.counter
    return {
        "profile": schedule.name,
        "seed": seed,
        "variant": variant,
        "replicas": replicas,
        "ops": stats["ops"],
        "errors": stats["typed_errors"],
        "error_rate": (stats["typed_errors"] / stats["ops"]
                       if stats["ops"] else 0.0),
        "untyped_errors": stats["untyped_errors"],
        "corrupt_values": stats["corrupt_values"],
        "lost_acked_writes": lost,
        "deadline_violations": stats["deadline_violations"],
        "pre_kops": pre_kops,
        "post_kops": post_kops,
        "recovered_ratio": post_kops / pre_kops if pre_kops else 0.0,
        "p99_ms": p99 / 1e6,
        "blackout_ms": blackout / 1e6,
        "failovers": counters("swat.failovers").value,
        "log_recoveries": counters("durable.recoveries").value,
        "log_replayed": counters("durable.replayed").value,
        "lease_skew_hazards": counters("client.lease_skew_hazards").value,
        "gray_failures": counters("shard.gray_failures").value,
        "stale_responses": counters("client.stale_responses").value,
        "bucket_reads": counters("client.bucket_reads").value,
        "traversal_races": counters("client.traversal_races").value,
        "demotions": counters("client.demotions").value,
        "injected_faults": injector.injected,
        "schedule_hash": injector.schedule_hash(),
        "converged": stats["seal_failures"] == 0 and len(sealed) == n_keys,
    }


def _cell_args(cell: tuple) -> tuple[str, int, str, int]:
    profile, seed = cell[0], cell[1]
    variant = cell[2] if len(cell) > 2 else "plain"
    replicas = cell[3] if len(cell) > 3 else 1
    return profile, seed, variant, replicas


def chaos_soak(scale: float = 1.0,
               cells: Sequence[tuple] = SOAK_SEEDS) -> list[dict]:
    """The bench experiment: one row per storm cell.

    The first cell is run twice and its injection-log hash and verdict
    compared — the ``deterministic`` column is the replayability proof.
    The same check holds for every cell in the matrix (variants and
    replica counts included); the dedicated determinism test covers a
    variant cell so the storm matrix keeps same-seed replay identity.
    """
    rows = []
    for cell in cells:
        profile, seed, variant, replicas = _cell_args(cell)
        rows.append(run_soak(profile, seed, scale=scale, variant=variant,
                             replicas=replicas))
    if rows:
        profile, seed, variant, replicas = _cell_args(cells[0])
        rerun = run_soak(profile, seed, scale=scale, variant=variant,
                         replicas=replicas)
        verdict = ("ops", "errors", "corrupt_values", "lost_acked_writes",
                   "schedule_hash", "injected_faults")
        rows[0]["deterministic"] = all(
            rows[0][k] == rerun[k] for k in verdict)
    return rows


def main() -> int:  # pragma: no cover - thin CLI
    import argparse
    import json

    ap = argparse.ArgumentParser(
        description="run one seeded chaos soak cell")
    ap.add_argument("--profile", default="mixed", choices=PROFILES)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--variant", default="plain",
                    choices=("plain", "subshard", "pipelined"))
    ap.add_argument("--replicas", type=int, default=1)
    ns = ap.parse_args()
    row = run_soak(ns.profile, ns.seed, scale=ns.scale,
                   variant=ns.variant, replicas=ns.replicas)
    print(json.dumps(row, indent=2))
    bad = (row["untyped_errors"] or row["corrupt_values"]
           or row["lost_acked_writes"] or row["deadline_violations"]
           or not row["converged"])
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
