"""The deterministic fault injector: one object, narrow hooks per layer.

``FaultInjector`` is attached to a cluster (``attach``) and consulted by
each layer through a single nullable attribute (``fabric.fault_injector``,
``tcpnet.fault_injector``, ``zk.fault_injector``, per-secondary
``fault_injector``).  Hooks are *pull*-style: the layer asks "does this
event fault?" at the moment it happens, the injector samples its named
RNG stream against the schedule's active window and answers.  Discrete
actions (crashes, gray failures, session expiries, QP flaps, SWAT churn)
are applied by a driver process started with ``start()``.

Because every sample comes from
:class:`~repro.sim.StreamRegistry` seeded by the schedule and the
simulator itself is deterministic, the full injection log — and therefore
``schedule_hash()`` — is a pure function of ``(schedule, workload seed)``.

Fault scope rules (the safety contract, see docs/PROTOCOLS.md):

* RDMA write faults apply only to message-buffer regions (``*.req`` /
  ``*.resp``).  Replication ring/ack regions are exempt: RC ordering is
  what the SWZR protocol is built on, and a dropped ring frame is an
  unrecoverable wedge, not a recoverable fault.
* Torn writes always land an 8-byte-aligned prefix and never produce a
  completion — exactly the partial-DMA window the indicator framing and
  guardian words exist to catch.
* Duplicates are restricted to response regions: a replayed *response* is
  discarded by the client's stale-``req_id`` check, while a replayed
  *request* could re-execute a stale mutation and corrupt the oracle.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..sim import Simulator, StreamRegistry
from .schedule import FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """Samples a :class:`FaultSchedule` against live traffic."""

    def __init__(self, sim: Simulator, schedule: FaultSchedule):
        self.sim = sim
        self.schedule = schedule
        self.rng = StreamRegistry(schedule.seed)
        self.cluster = None
        #: Ordered record of every injected fault: ``(t_ns, site, detail)``.
        self.log: list[tuple[int, str, str]] = []
        self.injected = 0
        self._proc = None

    # -- wiring ---------------------------------------------------------
    def attach(self, cluster) -> "FaultInjector":
        """Point every layer's fault hook at this injector."""
        self.cluster = cluster
        cluster.fabric.fault_injector = self
        cluster.tcpnet.fault_injector = self
        ha = getattr(cluster, "ha", None)
        if ha is not None:
            ha.zk.fault_injector = self
        for secs in cluster.secondaries.values():
            for sec in secs:
                sec.fault_injector = self
        return self

    def start(self) -> None:
        """Spawn the driver process that applies the discrete actions."""
        if self.cluster is None:
            raise RuntimeError("attach() the injector to a cluster first")
        self._proc = self.sim.process(self._driver(), name="chaos.driver")

    # -- bookkeeping ----------------------------------------------------
    def _record(self, site: str, detail: str = "") -> None:
        self.injected += 1
        self.log.append((self.sim.now, site, detail))

    def schedule_hash(self) -> str:
        """Digest of the injection log — identical seeds must match."""
        h = hashlib.sha256()
        for t, site, detail in self.log:
            h.update(f"{t}:{site}:{detail}\n".encode())
        return h.hexdigest()[:16]

    def _sample(self, stream: str, p: float) -> bool:
        if p <= 0.0:
            return False
        return bool(self.rng.stream(stream).random() < p)

    def _delay(self, stream: str, w) -> int:
        hi = max(w.min_delay_ns + 1, w.max_delay_ns)
        return int(self.rng.stream(stream).integers(w.min_delay_ns, hi))

    @staticmethod
    def _region_class(region) -> str:
        name = getattr(region, "name", "") or ""
        if name.endswith(".req"):
            return "req"
        if name.endswith(".resp"):
            return "resp"
        return "other"  # ring / ack / arena / rptr: exempt by design

    # -- per-layer hooks -------------------------------------------------
    def rdma_write_fault(self, nic, qp, region, offset,
                         data) -> Optional[dict]:
        """Fault decision for a one-sided Write; ``None`` = clean."""
        cls = self._region_class(region)
        if cls == "other":
            return None
        now = self.sim.now
        sched = self.schedule
        w = sched.active("write_drop", now)
        if w is not None and self._sample("nic.write_drop", w.p):
            self._record("write_drop", region.name)
            return {"drop": True}
        w = sched.active("write_torn", now)
        if w is not None and len(data) > 8 \
                and self._sample("nic.write_torn", w.p):
            # Land a whole-word prefix strictly shorter than the payload:
            # the DMA engine writes words atomically, links tear between
            # them.  No completion is generated — the retry timer fires.
            words = (len(data) - 1) // 8
            cut = 8 * int(self.rng.stream("nic.torn_cut").integers(
                1, words + 1))
            self._record("write_torn",
                         f"{region.name}+{offset}:{cut}/{len(data)}")
            return {"torn_bytes": cut}
        decision: dict = {}
        w = sched.active("write_delay", now)
        if w is not None and self._sample("nic.write_delay", w.p):
            decision["delay_ns"] = self._delay("nic.write_delay_ns", w)
            self._record("write_delay", region.name)
        if cls == "resp":
            w = sched.active("write_dup", now)
            if w is not None and self._sample("nic.write_dup", w.p):
                decision["duplicate"] = True
                self._record("write_dup", region.name)
        return decision or None

    def rdma_read_fault(self, nic, qp, region, offset,
                        length) -> Optional[dict]:
        """Fault decision for a one-sided Read; ``None`` = clean."""
        now = self.sim.now
        w = self.schedule.active("read_drop", now)
        if w is not None and self._sample("nic.read_drop", w.p):
            self._record("read_drop", getattr(region, "name", "?"))
            return {"drop": True}
        w = self.schedule.active("read_delay", now)
        if w is not None and self._sample("nic.read_delay", w.p):
            d = self._delay("nic.read_delay_ns", w)
            self._record("read_delay", getattr(region, "name", "?"))
            return {"delay_ns": d}
        return None

    def tcp_fault(self, conn, payload, nbytes) -> Optional[str]:
        """``"reset"``, ``"short"``, or ``None`` for a TCP send."""
        now = self.sim.now
        w = self.schedule.active("tcp_reset", now)
        if w is not None and self._sample("tcp.reset", w.p):
            self._record("tcp_reset", f"{nbytes}B")
            return "reset"
        w = self.schedule.active("tcp_short", now)
        if w is not None and self._sample("tcp.short", w.p):
            self._record("tcp_short", f"{nbytes}B")
            return "short"
        return None

    def watch_delay(self, path, kind) -> int:
        """Extra delivery delay (ns) for a ZooKeeper watch event."""
        w = self.schedule.active("watch_delay", self.sim.now)
        if w is not None and self._sample("zk.watch_delay", w.p):
            d = self._delay("zk.watch_delay_ns", w)
            self._record("watch_delay", f"{path}:{kind}")
            return d
        return 0

    def replication_fault(self, sec) -> bool:
        """Should this secondary's merge of the next record fail?"""
        w = self.schedule.active("rep_fault", self.sim.now)
        if w is not None and self._sample("rep.fault", w.p):
            self._record("rep_fault", sec.shard_id)
            return True
        return False

    # -- discrete actions -------------------------------------------------
    def _driver(self):
        for action in sorted(self.schedule.actions, key=lambda a: a.t_ns):
            delay = action.t_ns - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._apply(action)

    def _shard_at(self, index: int):
        sids = self.cluster.routing.shard_ids()
        if not sids:
            return None
        return self.cluster.routing.resolve(sids[index % len(sids)])

    def _apply(self, action) -> None:
        cluster = self.cluster
        kind = action.kind
        if kind == "shard_crash":
            # Kill the whole server machine so heartbeats stop and SWAT
            # runs a real failover, exactly like the availability bench.
            servers = cluster.servers
            if not servers:
                return
            server = servers[action.index % len(servers)]
            if any(sh.alive for sh in server.shards):
                self._record("shard_crash", server.server_id)
                server.kill()
        elif kind == "gray":
            shard = self._shard_at(action.index)
            if shard is None or not shard.alive:
                return
            self._record("gray_fail", shard.shard_id)
            shard.gray_fail()

            def _heal(sh=shard, dur=max(1, action.duration_ns)):
                yield self.sim.timeout(dur)
                self._record("gray_recover", sh.shard_id)
                sh.gray_recover()

            self.sim.process(_heal(), name="chaos.gray_heal")
        elif kind == "zk_expire_agent":
            ha = getattr(cluster, "ha", None)
            shard = self._shard_at(action.index)
            if ha is None or shard is None:
                return
            n = ha.zk.expire_sessions_of(shard.shard_id)
            if n:
                self._record("zk_expire", f"{shard.shard_id}:{n}")
        elif kind == "swat_churn":
            ha = getattr(cluster, "ha", None)
            if ha is None:
                return
            swat = ha.swat
            mid = swat.leader_id
            if mid is None or not swat._member_alive[mid]:
                # No leader right now; churn a live member instead.
                live = [i for i, a in enumerate(swat._member_alive) if a]
                if not live:
                    return
                mid = live[0]
            self._record("swat_churn", f"m{mid}")
            swat.kill_member(mid)
            ha.zk.expire_sessions_of(f"swat.m{mid}")
            swat.spawn_member()
        elif kind == "dual_crash":
            # Correlated failure: take down a whole server machine *and*
            # every secondary covering its shards.  Replication tolerates
            # exactly one of those; losing both leaves the durable log as
            # the only way back (SWAT's no-candidate branch replays it).
            servers = cluster.servers
            if not servers:
                return
            server = servers[action.index % len(servers)]
            if not any(sh.alive for sh in server.shards):
                return
            sids = [sh.shard_id for sh in server.shards]
            self._record("dual_crash", server.server_id)
            server.kill()
            for sid in sids:
                for sec in cluster.secondaries.get(sid, []):
                    if not sec.failing:
                        sec.kill()
                    if sec.machine.nic.alive:
                        sec.machine.nic.fail()
        elif kind == "clock_skew":
            # Skew every client machine's wall clock by a seeded offset in
            # ±duration_ns.  Lease checks on those machines now read a
            # clock that may run ahead of the shard's; only the client's
            # lease_skew_guard_ns keeps reads inside the safety horizon.
            bound = max(1, action.duration_ns)
            rng = self.rng.stream("chaos.clock_skew")
            for machine in getattr(cluster, "client_machines", []):
                skew = int(rng.integers(-bound, bound + 1))
                machine.clock_skew_ns = skew
                self._record("clock_skew", f"m{machine.machine_id}:{skew}")
        elif kind == "qp_flap":
            conns = []
            for sid in cluster.routing.shard_ids():
                shard = cluster.routing.resolve(sid)
                if shard.alive:
                    conns.extend((sid, c) for c in shard.conns
                                 if c.shard_qp.usable)
            if not conns:
                return
            idx = int(self.rng.stream("chaos.qp_flap").integers(
                0, len(conns)))
            sid, conn = conns[idx]
            # Label by shard + position, not conn_id: connection ids come
            # from a process-global counter, so they differ between two
            # clusters in one process even when the runs are identical.
            self._record("qp_flap", f"{sid}#{idx}")
            conn.shard_qp.force_error()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FaultInjector {self.schedule.name} seed="
                f"{self.schedule.seed} injected={self.injected}>")
