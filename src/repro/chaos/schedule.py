"""Seeded fault schedules: what breaks, when, and with what probability.

A schedule is pure data — a set of :class:`FaultWindow` intervals (during
which a fault *site* fires probabilistically) plus a list of discrete
:class:`FaultAction` events (crash this shard, expire that session).
Everything is derived from a single seed via
:class:`~repro.sim.StreamRegistry`, so two runs with the same profile and
seed see exactly the same storm — the property the determinism test and
``schedule_hash`` pin down.

Fault **sites** (window-driven, sampled per event by the injector):

========== ==========================================================
site        what fires
========== ==========================================================
write_drop  one-sided RDMA Write silently dropped in the fabric
write_delay RDMA Write delivery delayed by ``[min,max]_delay_ns``
write_dup   response-region Write delivered twice (resurrection)
write_torn  Write lands as an 8-byte-aligned prefix, no completion
read_drop   one-sided RDMA Read dropped (completes RETRY_EXC later)
read_delay  RDMA Read response delayed
tcp_reset   TCP send turns into a connection reset
tcp_short   TCP send truncated (short write / short read at peer)
watch_delay ZooKeeper watch delivery delayed
rep_fault   secondary merge thread rejects a replication record
========== ==========================================================

Action **kinds** (discrete, applied by the injector's driver process):
``shard_crash``, ``gray`` (stop sweeping, QPs stay alive, heal after
``duration_ns``), ``zk_expire_agent`` (force-expire a shard agent's
session), ``swat_churn`` (kill + expire the SWAT leader, spawn a
replacement), ``qp_flap`` (spontaneous QP error on a live client
connection), ``dual_crash`` (correlated failure: kill a server *and*
its shards' secondaries — replication cannot cover it, so SWAT must
rebuild from the durable log), ``clock_skew`` (skew every client
machine's wall clock by up to ±``duration_ns``; lease checks must stay
safe under ``client.lease_skew_guard_ns``).

Injection is deliberately *not* wired into the replication ring or ack
regions: a torn or dropped ring frame is a protocol-level wedge (the
reader polls ``None`` forever behind the gap) that real NICs' RC
semantics rule out — see docs/PROTOCOLS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sim import StreamRegistry

__all__ = ["FaultWindow", "FaultAction", "FaultSchedule", "build_schedule",
           "PROFILES"]

_MS = 1_000_000

#: Window-driven fault sites the injector samples.
SITES = ("write_drop", "write_delay", "write_dup", "write_torn",
         "read_drop", "read_delay", "tcp_reset", "tcp_short",
         "watch_delay", "rep_fault")

#: Discrete action kinds the driver process applies.
ACTION_KINDS = ("shard_crash", "gray", "zk_expire_agent", "swat_churn",
                "qp_flap", "dual_crash", "clock_skew")

#: Named storm profiles understood by :func:`build_schedule`.
PROFILES = ("torn", "gray", "zk", "flap", "mixed", "stale", "tenant",
            "dualfail")


@dataclass(frozen=True)
class FaultWindow:
    """An interval during which ``site`` fires with probability ``p``."""

    site: str
    t0_ns: int
    t1_ns: int
    p: float = 0.0
    min_delay_ns: int = 0
    max_delay_ns: int = 0

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if not self.t0_ns < self.t1_ns:
            raise ValueError("empty fault window")


@dataclass(frozen=True)
class FaultAction:
    """A discrete fault applied at ``t_ns`` by the injector driver."""

    t_ns: int
    kind: str
    index: int = 0
    duration_ns: int = 0

    def __post_init__(self):
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown fault action {self.kind!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """A complete, replayable storm: windows + actions + their seed."""

    name: str
    seed: int
    windows: Sequence[FaultWindow] = field(default_factory=tuple)
    actions: Sequence[FaultAction] = field(default_factory=tuple)

    def active(self, site: str, now: int) -> Optional[FaultWindow]:
        """First window covering ``site`` at time ``now``, if any."""
        for w in self.windows:
            if w.site == site and w.t0_ns <= now < w.t1_ns:
                return w
        return None

    def describe(self) -> str:
        parts = [f"{w.site}@[{w.t0_ns // _MS},{w.t1_ns // _MS}]ms"
                 f" p={w.p:.3f}" for w in self.windows]
        parts += [f"{a.kind}#{a.index}@{a.t_ns // _MS}ms"
                  for a in sorted(self.actions, key=lambda a: a.t_ns)]
        return "; ".join(parts)


def build_schedule(profile: str, seed: int,
                   storm_start_ns: int = 150 * _MS,
                   storm_end_ns: int = 450 * _MS) -> FaultSchedule:
    """Generate the seeded storm for one named profile.

    All jitter comes from one named stream off ``seed``, so the schedule
    is a pure function of ``(profile, seed, storm bounds)``.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}; "
                         f"choose one of {PROFILES}")
    rng = StreamRegistry(seed).stream(f"chaos.schedule.{profile}")
    span = storm_end_ns - storm_start_ns
    if span <= 0:
        raise ValueError("storm window must be non-empty")

    def jit(lo: float, hi: float) -> int:
        """A point inside the storm at relative position [lo, hi)."""
        return storm_start_ns + int(span * (lo + (hi - lo) * rng.random()))

    def prob(lo: float, hi: float) -> float:
        return float(lo + (hi - lo) * rng.random())

    windows: list[FaultWindow] = []
    actions: list[FaultAction] = []

    def window(site: str, p_lo: float, p_hi: float,
               min_d: int = 0, max_d: int = 0) -> None:
        t0 = jit(0.0, 0.25)
        t1 = jit(0.7, 1.0)
        windows.append(FaultWindow(site, t0, t1, p=prob(p_lo, p_hi),
                                   min_delay_ns=min_d, max_delay_ns=max_d))

    if profile == "torn":
        # Guardian-word storm: torn + dropped writes, slow reads, one flap.
        window("write_torn", 0.05, 0.12)
        window("write_drop", 0.01, 0.03)
        window("read_delay", 0.05, 0.15, min_d=50_000, max_d=400_000)
        actions.append(FaultAction(jit(0.3, 0.7), "qp_flap"))
    elif profile == "gray":
        # The shard stops sweeping but its QPs stay alive; only client
        # deadlines save the workload until the gray period heals.
        dur = int(span * (0.4 + 0.2 * rng.random()))
        actions.append(FaultAction(jit(0.1, 0.3), "gray",
                                   index=int(rng.integers(0, 4)),
                                   duration_ns=dur))
        window("write_delay", 0.02, 0.05, min_d=20_000, max_d=200_000)
    elif profile == "zk":
        # Coordination storm: agent session expiries, laggy watches, and
        # one SWAT leader churn, with the data plane untouched.
        for _ in range(3):
            actions.append(FaultAction(jit(0.05, 0.9), "zk_expire_agent",
                                       index=int(rng.integers(0, 4))))
        window("watch_delay", 0.3, 0.6, min_d=1 * _MS, max_d=10 * _MS)
        actions.append(FaultAction(jit(0.3, 0.7), "swat_churn"))
    elif profile == "flap":
        # QP error storms plus background packet loss on both verbs.
        for _ in range(3):
            actions.append(FaultAction(jit(0.05, 0.95), "qp_flap"))
        window("write_drop", 0.01, 0.04)
        window("read_drop", 0.01, 0.04)
    elif profile == "stale":
        # Stale-pointer storm for the index-traversal path: Reads are
        # delayed long enough that bucket snapshots and primed pointers
        # go stale against lease expiry and reclaim (the soak harness
        # shrinks leases/reclaim/horizon for this profile), with light
        # packet loss and one QP flap on top.  The oracle then proves no
        # torn or reclaimed value ever surfaces from a traversal.
        window("read_delay", 0.25, 0.45, min_d=100_000, max_d=2_000_000)
        window("read_drop", 0.01, 0.03)
        window("write_delay", 0.02, 0.05, min_d=20_000, max_d=200_000)
        actions.append(FaultAction(jit(0.3, 0.7), "qp_flap"))
    elif profile == "tenant":
        # Multi-tenant storm: the harness pairs this schedule with an
        # aggressor tenant saturating the shared connections through the
        # QoS layer (admission + DRR slot arbitration), so the faults
        # here land on contended pipes — QP flaps tear down connections
        # with cross-tenant arbiter state, light loss forces retries
        # through admission, and delayed writes age out slot grants.
        for _ in range(2):
            actions.append(FaultAction(jit(0.1, 0.9), "qp_flap"))
        window("write_drop", 0.01, 0.03)
        window("write_delay", 0.02, 0.05, min_d=20_000, max_d=200_000)
    elif profile == "dualfail":
        # Correlated primary+secondary death under load.  The replication
        # ring tolerates exactly one failure; this storm takes both, so
        # the only way back is the durable write-behind log (the harness
        # enables it in ack_on_flush mode for this profile).  Client
        # clocks are skewed early — before any lease is trusted across
        # the blackout — and light write weather keeps retries honest.
        actions.append(FaultAction(jit(0.0, 0.1), "clock_skew",
                                   duration_ns=500_000))
        actions.append(FaultAction(jit(0.25, 0.5), "dual_crash",
                                   index=int(rng.integers(0, 4))))
        window("write_delay", 0.02, 0.05, min_d=20_000, max_d=200_000)
        window("write_drop", 0.005, 0.02)
    else:  # mixed
        actions.append(FaultAction(jit(0.15, 0.4), "shard_crash",
                                   index=int(rng.integers(0, 4))))
        window("rep_fault", 0.02, 0.06)
        window("write_dup", 0.02, 0.06)
        window("write_torn", 0.01, 0.04)
        window("write_drop", 0.005, 0.02)
        actions.append(FaultAction(jit(0.5, 0.8), "zk_expire_agent",
                                   index=int(rng.integers(0, 4))))
        actions.append(FaultAction(jit(0.6, 0.9), "qp_flap"))

    return FaultSchedule(name=profile, seed=seed,
                         windows=tuple(windows), actions=tuple(actions))
