# Convenience targets for the HydraDB reproduction.

PYTEST ?= python -m pytest
RUFF ?= ruff

.PHONY: test lint bench bench-quick bench-inflight bench-multiget \
	bench-failover bench-recovery bench-sweep bench-simcore \
	bench-tenants bench-scale bench-smoke chaos-soak figures examples \
	clean

test:
	$(PYTEST) tests/

lint:
	@if command -v $(RUFF) >/dev/null 2>&1; then \
		$(RUFF) check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to a syntax check"; \
		python -m compileall -q src tests benchmarks examples; \
	fi

bench:
	$(PYTEST) benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=0.2 $(PYTEST) benchmarks/ --benchmark-only

bench-inflight:
	python -m repro.bench inflight --scale 1.0

bench-multiget:
	python -m repro.bench multiget --scale 1.0

bench-failover:
	python -m repro.bench failover --scale 1.0
	python -m repro.bench.validate BENCH_failover.json

# Full-crash recovery from the per-shard durable write-behind log: a
# correlated primary+secondary kill per ack mode — zero lost acked
# writes hard-required in ack_on_flush, bounded blackout, replay
# throughput reported.
bench-recovery:
	PYTHONPATH=$(CURDIR)/src python -m repro.bench recovery --scale 1.0
	PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate BENCH_recovery.json

bench-sweep:
	python -m repro.bench server_sweep --scale 1.0
	python -m repro.bench.validate BENCH_sweep.json

# Event-kernel microbench: two-tier calendar + now-queue + pooled timers
# vs the seed heapq loop (Simulator(legacy=True)), with BLAKE2 schedule
# digests proving bit-identical dispatch order before any timing counts.
bench-simcore:
	PYTHONPATH=$(CURDIR)/src python -m repro.bench simcore --scale 1.0
	PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate BENCH_simcore.json

# Seeded chaos soak: fault-storm profiles (torn writes, gray failure,
# ZK expiry, QP flaps, mixed, stale pointers, tenant contention, and the
# correlated dualfail storm recovered through the durable log) across a
# server-variant matrix (plain / sub-sharded / pipelined, replicas up to
# 2) against the resilience contract — no acked write lost, no corrupt
# value surfaced, typed bounded errors, post-storm recovery — plus a
# same-seed replay determinism check.
chaos-soak:
	PYTHONPATH=$(CURDIR)/src python -m repro.bench chaos --scale 0.5
	PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate BENCH_chaos.json

# Multi-tenant QoS: DRR slot fairness, admission throttling, server-side
# shed and AIMD window autotune — victim vs aggressor cells scored with
# Jain's index over weighted water-filling fair shares.
bench-tenants:
	PYTHONPATH=$(CURDIR)/src python -m repro.bench tenants --scale 1.0
	PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate BENCH_tenants.json

# Fig. 12 at cluster scale: 64 servers x 2048 closed-loop clients, the
# default stack (flat-array hot paths + calendar kernel) timed against
# the seed stack (scalar paths + heapq kernel) with BLAKE2 schedule
# digests proving both dispatch bit-identical event sequences.
bench-scale:
	PYTHONPATH=$(CURDIR)/src python -m repro.bench scale --scale 1.0
	PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate BENCH_scale.json

# Tiny end-to-end run of the artifact-emitting benches plus schema
# validation of what they wrote; fast enough for CI.
bench-smoke:
	rm -rf .bench-smoke && mkdir -p .bench-smoke
	cd .bench-smoke && \
		PYTHONPATH=$(CURDIR)/src python -m repro.bench inflight multiget \
			failover recovery server_sweep chaos simcore tenants scale \
			--scale 0.05 && \
		PYTHONPATH=$(CURDIR)/src python -m repro.bench.validate \
			BENCH_inflight.json BENCH_multiget.json BENCH_failover.json \
			BENCH_recovery.json BENCH_sweep.json BENCH_chaos.json \
			BENCH_simcore.json BENCH_tenants.json BENCH_scale.json

figures:
	python -m repro.bench all --scale 0.5

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks .hypothesis .bench-smoke
