# Convenience targets for the HydraDB reproduction.

PYTEST ?= python -m pytest

.PHONY: test bench bench-quick figures examples clean

test:
	$(PYTEST) tests/

bench:
	$(PYTEST) benchmarks/ --benchmark-only

bench-quick:
	REPRO_SCALE=0.2 $(PYTEST) benchmarks/ --benchmark-only

figures:
	python -m repro.bench all --scale 0.5

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks .hypothesis
