#!/usr/bin/env python3
"""G2 Sensemaking scenario (§2.2 / Fig. 3).

Assertion-making engines resolve entities (GETs) and persist derived
observations (PUTs) per event.  Against the relational in-memory database
the engines stall on the store; against HydraDB they keep scaling.

Run with::

    python examples/sensemaking.py
"""

from repro.config import SimConfig
from repro.hardware import Machine
from repro.protocol import Op
from repro.rdma import Fabric, TcpNetwork
from repro.sim import Simulator
from repro.workloads import (
    DbClient,
    G2Profile,
    InMemoryDatabase,
    hydra_g2_cluster,
    preload_entities,
    run_engines,
)

PROFILE = G2Profile(entity_space=8_000, lookups_per_event=3,
                    writes_per_event=1, compute_ns_per_event=5_000)
EVENTS = 50


def db_events_per_s(n_engines: int) -> float:
    cfg = SimConfig()
    sim = Simulator()
    fabric, tcpnet = Fabric(sim, cfg), TcpNetwork(sim, cfg)
    machines = [Machine(sim, i, cfg) for i in range(5)]
    for m in machines:
        fabric.attach(m)
        tcpnet.attach(m)
    db = InMemoryDatabase(sim, cfg, machines[0])
    preload_entities(db.tables.__setitem__, PROFILE)
    clients = [DbClient(sim, machines[1 + i % 4], db)
               for i in range(n_engines)]
    eps, _ = run_engines(sim, clients, PROFILE, EVENTS)
    return eps


def hydra_events_per_s(n_engines: int) -> float:
    cluster = hydra_g2_cluster()
    preload_entities(
        lambda k, v: cluster.route(k).store.upsert(k, v, Op.PUT), PROFILE)
    cluster.start()
    clients = [cluster.client(i % 4) for i in range(n_engines)]
    eps, _ = run_engines(cluster.sim, clients, PROFILE, EVENTS)
    return eps


def main() -> None:
    print(f"{'engines':>8s} {'in-mem DB (ev/s)':>17s} "
          f"{'HydraDB (ev/s)':>15s} {'ratio':>7s}")
    for n in (1, 2, 4, 8, 16, 32):
        db = db_events_per_s(n)
        hy = hydra_events_per_s(n)
        print(f"{n:8d} {db:17,.0f} {hy:15,.0f} {hy/db:6.1f}x")
    print("\nAs in Fig. 3: the database saturates early while HydraDB lets"
          "\n~4x more engines operate, at an order of magnitude more "
          "throughput.")


if __name__ == "__main__":
    main()
