#!/usr/bin/env python3
"""Elasticity walkthrough (§5.1): growing the cluster under SWAT.

SWAT doesn't just react to failures — node joins are status changes too:
the leader migrates the consistent-hashing arcs the new shards now own
out of the old shards (replicating the deletions to keep secondaries in
step), then admits the new shards to the ring.

Run with::

    python examples/elastic.py
"""

from repro import HydraCluster, QosConfig, SimConfig

MS = 1_000_000


def shard_sizes(cluster) -> dict[str, int]:
    return {sid: len(cluster.routing.resolve(sid).store)
            for sid in sorted(cluster.ring.members)}


def main() -> None:
    cfg = SimConfig().with_overrides(replication={"replicas": 1})
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=2, n_client_machines=1)
    ha = cluster.enable_ha()
    cluster.start()
    # The bulk loader runs as its own tenant: on a busy cluster its QoS
    # policy (token-bucket admission, DRR slot share) would keep it from
    # starving latency-sensitive tenants on the same connections.
    client = cluster.client(tenant="loader", qos=QosConfig(weight=1.0))
    sim = cluster.sim
    n = 400

    def load():
        for i in range(n):
            yield from client.put(f"item:{i:05d}".encode(),
                                  f"payload-{i}".encode())

    cluster.run(load())
    print(f"[{sim.now/MS:8.2f}ms] loaded {n} keys")
    print(f"           placement: {shard_sizes(cluster)}")

    sim.run(until=sim.now + 30 * MS)  # replication settles
    print(f"[{sim.now/MS:8.2f}ms] joining a new server with 2 shards...")
    join = sim.process(ha.swat.join_server(n_shards=2))
    sim.run(until=join)
    sizes = shard_sizes(cluster)
    moved = sum(sizes[sid] for sid in sizes if sid.startswith("s1"))
    print(f"[{sim.now/MS:8.2f}ms] ring now has {len(cluster.ring)} shards; "
          f"{moved} keys migrated to the new server")
    print(f"           placement: {sizes}")
    assert sum(sizes.values()) == n, "keys lost in migration!"

    def verify():
        misses = 0
        for i in range(n):
            value = yield from client.get(f"item:{i:05d}".encode())
            if value != f"payload-{i}".encode():
                misses += 1
        print(f"[{sim.now/MS:8.2f}ms] verified all {n} keys post-migration: "
              f"{misses} wrong")

    cluster.run(verify())

    # Secondaries track the shrunken primaries too (migration deletions
    # were replicated), so a failover right now would stay consistent.
    sim.run(until=sim.now + 50 * MS)
    for sid, secs in cluster.secondaries.items():
        primary = cluster.routing.resolve(sid)
        for sec in secs:
            assert sec.store.dump() == primary.store.dump(), sid
    print("           every secondary matches its (possibly shrunken) "
          "primary")


if __name__ == "__main__":
    main()
