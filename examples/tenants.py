#!/usr/bin/env python3
"""Multi-tenant QoS walkthrough: admission control and fair queueing.

Two tenants share one client machine — and therefore the same physical
connections, message slots and in-flight windows:

* ``web`` — latency-sensitive, paced GETs (one per 50 us).
* ``batch`` — a closed-loop PUT aggressor with effectively unbounded
  offered load.

Without a policy, ``batch`` saturates the shared window and ``web``'s
tail latency balloons.  With a token-bucket admission rate on ``batch``,
the surplus is refused at *issue* time as typed
:class:`~repro.TenantThrottled` errors (carrying a ``retry_after_ns``
hint the retry engine sleeps out), the server never saturates, and
``web``'s p99 stays at its solo baseline.

Run with::

    python examples/tenants.py
"""

from repro import HydraCluster, QosConfig, SimConfig, TenantThrottled

US = 1_000
N_OPS = 400
THINK_NS = 50 * US


def percentile(lat_ns, q):
    lat = sorted(lat_ns)
    return lat[min(len(lat) - 1, int(len(lat) * q))] / US


def run_cell(name, agg_qos):
    cfg = SimConfig().with_overrides(
        hydra={"msg_slots_per_conn": 16},
        client={"max_inflight_per_conn": 16, "rptr_cache_enabled": False},
        traversal={"enabled": False},
    )
    with HydraCluster(config=cfg, n_server_machines=1, shards_per_server=1,
                      n_client_machines=1) as cluster:
        sim = cluster.sim
        web = cluster.client(tenant="web", qos=QosConfig(weight=4.0))
        keys = [f"k{i:04d}".encode() for i in range(64)]

        def preload():
            for key in keys:
                yield from web.put(key, b"v" * 64)

        cluster.run(preload())

        lat_ns = []
        done = {}

        def web_tenant():
            t_next = sim.now
            for i in range(N_OPS):
                t_next += THINK_NS
                if t_next > sim.now:
                    yield sim.timeout(t_next - sim.now)
                t0 = sim.now
                yield from web.get(keys[i % len(keys)])
                lat_ns.append(sim.now - t0)
            done["at"] = sim.now

        procs = [web_tenant()]
        throttles = {"n": 0}
        if agg_qos is not None:
            batch = cluster.client(tenant="batch", qos=agg_qos,
                                   deadline_us=0)  # single attempt
            bkeys = [f"b{i:04d}".encode() for i in range(64)]

            def batch_tenant():
                # Off-grid start: in the deterministic sim a shaped
                # tenant grants on a fixed beat from its first op; real
                # clusters get this phase noise for free.
                yield sim.timeout(23 * US)
                j = 0
                while "at" not in done:
                    try:
                        yield from batch.put(bkeys[j % len(bkeys)], b"w" * 256)
                    except TenantThrottled as exc:
                        # Typed refusal at admission: back off as told.
                        throttles["n"] += 1
                        yield sim.timeout(max(exc.retry_after_ns, 1))
                    j += 1

            procs.append(batch_tenant())
        cluster.run(*procs)
        p50, p99 = percentile(lat_ns, 0.5), percentile(lat_ns, 0.99)
        throttled = cluster.metrics.counter(
            "client.tenant.batch.throttled").value
        print(f"{name:28s} web p50 {p50:6.2f}us  p99 {p99:6.2f}us"
              f"  batch throttles {int(throttled):5d}")
        return p99


def main() -> None:
    solo = run_cell("web alone", None)
    noisy = run_cell("vs unthrottled batch", QosConfig())
    shaped = run_cell("vs rate-limited batch",
                      QosConfig(rate_ops=5_000.0, burst=1))
    print(f"\nunthrottled batch inflates web p99 {noisy / solo:.1f}x; "
          f"admission control holds it to {shaped / solo:.1f}x")
    assert shaped <= 2.0 * solo, "shaped aggressor should preserve web p99"


if __name__ == "__main__":
    main()
