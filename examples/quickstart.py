#!/usr/bin/env python3
"""Quickstart: build a HydraDB cluster, run a client, inspect the fast path.

Run with::

    python examples/quickstart.py

Everything executes inside the discrete-event simulator: the timestamps
printed are *simulated* nanoseconds on the modeled InfiniBand testbed.
"""

from repro import HydraCluster

US = 1000  # ns per microsecond


def main() -> None:
    # One server machine with 4 shards (the paper's default), one client
    # machine; both cabled to a simulated 40 Gb/s RDMA fabric.  The
    # context manager starts the cluster and tears it down on exit.
    with HydraCluster(n_server_machines=1, shards_per_server=4,
                      n_client_machines=1) as cluster:
        run_app(cluster)


def run_app(cluster) -> None:
    # A tenant-scoped handle: ops are accounted under the tenant's
    # metric namespace (client.tenant.app.*) and governed by its QoS
    # policy — the default policy imposes no throttling, so this behaves
    # exactly like the anonymous `cluster.client()` legacy form (which
    # still works, as `tenant="default"`).  See examples/tenants.py for
    # admission control and fair queueing across tenants.
    client = cluster.client(tenant="app")
    sim = cluster.sim

    def app():
        # -- basic operations ------------------------------------------
        status = yield from client.put(b"user:ada", b"Ada Lovelace")
        print(f"[{sim.now/US:8.2f}us] PUT user:ada -> {status.name}")

        value = yield from client.get(b"user:ada")
        print(f"[{sim.now/US:8.2f}us] GET user:ada -> {value!r} "
              f"(message path, caches a remote pointer + lease)")

        # The second GET takes the one-sided RDMA-Read fast path: no
        # server CPU involved.
        t0 = sim.now
        value = yield from client.get(b"user:ada")
        print(f"[{sim.now/US:8.2f}us] GET user:ada -> {value!r} "
              f"(RDMA Read, {(sim.now-t0)/US:.2f}us round trip)")

        # Updates are out-of-place: the old item's guardian word flips,
        # so stale remote pointers are detected, never silently wrong.
        yield from client.update(b"user:ada", b"Countess of Lovelace")
        value = yield from client.get(b"user:ada")
        print(f"[{sim.now/US:8.2f}us] after UPDATE -> {value!r}")

        status = yield from client.insert(b"user:ada", b"dup")
        print(f"[{sim.now/US:8.2f}us] INSERT existing -> {status.name}")

        status = yield from client.delete(b"user:ada")
        print(f"[{sim.now/US:8.2f}us] DELETE -> {status.name}")

        value = yield from client.get(b"user:ada")
        print(f"[{sim.now/US:8.2f}us] GET after delete -> {value!r}")

    cluster.run(app())

    print("\nremote-pointer cache:", client.cache.stats())
    print("fabric counters:",
          {k: c.value for k, c in cluster.metrics.counters.items()
           if k.startswith("rdma.") and k.endswith(".ops")})
    print("tenant counters:",
          {k: c.value for k, c in cluster.metrics.counters.items()
           if k.startswith("client.tenant.")})


if __name__ == "__main__":
    main()
