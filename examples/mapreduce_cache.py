#!/usr/bin/env python3
"""MapReduce acceleration scenario (§2.1 / Fig. 2).

HydraDB as a cache layer on top of HDFS: analytics tasks stream their
input from the key-value cache over RDMA instead of through the HDFS
datanode protocol.  This script runs three representative applications
against all three I/O backends and prints the speedups.

Run with::

    python examples/mapreduce_cache.py
"""

from repro.config import SimConfig
from repro.hardware import Machine
from repro.rdma import Fabric, TcpNetwork
from repro.sim import Simulator
from repro.workloads import (
    AppProfile,
    HdfsBackend,
    HydraBackend,
    HydraTcpBackend,
    run_job,
)

APPS = (
    AppProfile("TestDFSIO-Read", "hadoop", input_mb=128,
               compute_ns_per_mb=0),
    AppProfile("WordCount", "hadoop", input_mb=96,
               compute_ns_per_mb=400_000),
    AppProfile("Spark-Scan", "spark", input_mb=64,
               compute_ns_per_mb=18_000_000),
)


def tcp_world():
    cfg = SimConfig()
    sim = Simulator()
    fabric, tcpnet = Fabric(sim, cfg), TcpNetwork(sim, cfg)
    machines = [Machine(sim, i, cfg) for i in range(3)]
    for m in machines:
        fabric.attach(m)
        tcpnet.attach(m)
    return cfg, sim, machines


def job_time_hdfs(profile):
    cfg, sim, machines = tcp_world()
    backend = HdfsBackend(sim, cfg, machines[0], machines[1:])
    conns = [sim.run(until=sim.process(backend.connect(machines[1 + i % 2])))
             for i in range(profile.n_tasks)]
    return run_job(sim, profile, conns)


def job_time_hydra_rdma(profile):
    backend = HydraBackend(None, SimConfig())
    backend.preload(profile.input_mb)  # the cache layer's prefetch phase
    conns = [backend.sim.run(until=backend.sim.process(backend.connect(i)))
             for i in range(profile.n_tasks)]
    return run_job(backend.sim, profile, conns)


def job_time_hydra_tcp(profile):
    cfg, sim, machines = tcp_world()
    backend = HydraTcpBackend(sim, cfg, machines[0])
    conns = [sim.run(until=sim.process(backend.connect(machines[1 + i % 2])))
             for i in range(profile.n_tasks)]
    return run_job(sim, profile, conns)


def main() -> None:
    print(f"{'application':16s} {'in-mem HDFS':>12s} {'Hydra RDMA':>11s} "
          f"{'Hydra TCP':>10s} {'speedup':>8s} {'tcp-speedup':>11s}")
    for profile in APPS:
        t_hdfs = job_time_hdfs(profile)
        t_rdma = job_time_hydra_rdma(profile)
        t_tcp = job_time_hydra_tcp(profile)
        print(f"{profile.name:16s} {t_hdfs/1e6:10.1f}ms {t_rdma/1e6:9.1f}ms "
              f"{t_tcp/1e6:8.1f}ms {t_hdfs/t_rdma:7.2f}x "
              f"{t_hdfs/t_tcp:10.2f}x")
    print("\nAs in Fig. 2: I/O-bound Hadoop jobs gain an order of magnitude;"
          "\ncompute-bound Spark jobs gain modestly; RDMA beats TCP "
          "throughout.")


if __name__ == "__main__":
    main()
