#!/usr/bin/env python3
"""High-availability walkthrough (§5): replication, crash, SWAT failover.

A primary shard replicates every mutation to a secondary through the RDMA
logging protocol.  We then kill the whole server machine: the shard's
ZooKeeper session expires, the SWAT leader notices the missing liveness
znode, promotes the secondary around its existing store, republishes the
routing metadata — and the failover-aware client *rides through*: a GET
issued mid-blackout retries inside its deadline budget, re-routes via
the bumped routing generation, and completes against the promoted shard
with every acknowledged write intact.  A legacy single-attempt client
(``deadline_us=0``) sees the blackout as a ``RequestTimeout`` instead.

Run with::

    python examples/failover.py
"""

from repro import HydraCluster, SimConfig
from repro.core import RequestTimeout
from repro.protocol import Status

MS = 1_000_000


def main() -> None:
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1, "mode": "rdma_log"},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    ha = cluster.enable_ha(n_swat=3)
    cluster.start()
    client = cluster.client()
    sim = cluster.sim
    shard_id = cluster.routing.shard_ids()[0]
    acked = {}

    def phase_write():
        for i in range(40):
            key, value = f"order:{i:04d}".encode(), f"item-{i}".encode()
            status = yield from client.put(key, value)
            if status is Status.OK:
                acked[key] = value
        print(f"[{sim.now/MS:9.2f}ms] {len(acked)} writes acknowledged "
              f"on primary {cluster.routing.resolve(shard_id).shard_id!r} "
              f"(machine {cluster.routing.resolve(shard_id).machine.machine_id})")

    cluster.run(phase_write())
    sim.run(until=sim.now + 20 * MS)  # let replication drain

    sec = cluster.secondaries[shard_id][0]
    print(f"[{sim.now/MS:9.2f}ms] secondary applied_seq={sec.applied_seq}, "
          f"store size={len(sec.store)}")

    print(f"[{sim.now/MS:9.2f}ms] killing server machine "
          f"{cluster.servers[0].machine.machine_id} (shards + NIC)...")
    cluster.servers[0].kill()

    legacy = cluster.client(deadline_us=0)  # pre-taxonomy single attempt

    def phase_blackout():
        try:
            yield from legacy.get(b"order:0000")
            print("unexpected: request served by a dead machine")
        except RequestTimeout:
            print(f"[{sim.now/MS:9.2f}ms] legacy client (deadline_us=0) "
                  f"timed out: primary dead, failover in progress")
        # The failover-aware client issued at the same moment retries
        # through the blackout and lands on the promoted secondary.
        t0 = sim.now
        got = yield from client.get(b"order:0000")
        print(f"[{sim.now/MS:9.2f}ms] failover-aware client rode through "
              f"in {(sim.now - t0)/MS:.1f} ms -> {got!r} "
              f"(retries={cluster.metrics.counter('client.retries').value}, "
              f"failovers="
              f"{cluster.metrics.counter('client.failovers').value})")

    cluster.run(phase_blackout())

    # Let SWAT finish republishing routing metadata.
    sim.run(until=sim.now + 4_000 * MS)
    new_shard = cluster.routing.resolve(shard_id)
    print(f"[{sim.now/MS:9.2f}ms] SWAT failovers={ha.swat.failovers}; "
          f"shard {shard_id!r} now served from machine "
          f"{new_shard.machine.machine_id}")

    def phase_verify():
        lost = 0
        for key, value in acked.items():
            got = yield from client.get(key)
            if got != value:
                lost += 1
        print(f"[{sim.now/MS:9.2f}ms] verified {len(acked)} acknowledged "
              f"writes on the promoted shard: {lost} lost")
        status = yield from client.put(b"order:after", b"post-failover")
        print(f"[{sim.now/MS:9.2f}ms] new write after failover -> "
              f"{status.name}")

    cluster.run(phase_verify())


if __name__ == "__main__":
    main()
