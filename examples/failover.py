#!/usr/bin/env python3
"""High-availability walkthrough (§5): replication, crash, SWAT failover.

A primary shard replicates every mutation to a secondary through the RDMA
logging protocol.  We then kill the whole server machine: the shard's
ZooKeeper session expires, the SWAT leader notices the missing liveness
znode, promotes the secondary around its existing store, republishes the
routing metadata — and the client, after one timed-out request, continues
against the promoted shard with every acknowledged write intact.

Run with::

    python examples/failover.py
"""

from repro import HydraCluster, SimConfig
from repro.core import RequestTimeout
from repro.protocol import Status

MS = 1_000_000


def main() -> None:
    cfg = SimConfig().with_overrides(
        replication={"replicas": 1, "mode": "rdma_log"},
        hydra={"op_timeout_ns": 5 * MS},
    )
    cluster = HydraCluster(config=cfg, n_server_machines=1,
                           shards_per_server=1, n_client_machines=1)
    ha = cluster.enable_ha(n_swat=3)
    cluster.start()
    client = cluster.client()
    sim = cluster.sim
    shard_id = cluster.routing.shard_ids()[0]
    acked = {}

    def phase_write():
        for i in range(40):
            key, value = f"order:{i:04d}".encode(), f"item-{i}".encode()
            status = yield from client.put(key, value)
            if status is Status.OK:
                acked[key] = value
        print(f"[{sim.now/MS:9.2f}ms] {len(acked)} writes acknowledged "
              f"on primary {cluster.routing.resolve(shard_id).shard_id!r} "
              f"(machine {cluster.routing.resolve(shard_id).machine.machine_id})")

    cluster.run(phase_write())
    sim.run(until=sim.now + 20 * MS)  # let replication drain

    sec = cluster.secondaries[shard_id][0]
    print(f"[{sim.now/MS:9.2f}ms] secondary applied_seq={sec.applied_seq}, "
          f"store size={len(sec.store)}")

    print(f"[{sim.now/MS:9.2f}ms] killing server machine "
          f"{cluster.servers[0].machine.machine_id} (shards + NIC)...")
    cluster.servers[0].kill()

    def phase_timeout():
        try:
            yield from client.get(b"order:0000")
            print("unexpected: request served by a dead machine")
        except RequestTimeout:
            print(f"[{sim.now/MS:9.2f}ms] client request timed out "
                  f"(primary dead, failover in progress)")

    cluster.run(phase_timeout())

    # ZooKeeper session expiry (2 s) + SWAT reaction + promotion.
    sim.run(until=sim.now + 4_000 * MS)
    new_shard = cluster.routing.resolve(shard_id)
    print(f"[{sim.now/MS:9.2f}ms] SWAT failovers={ha.swat.failovers}; "
          f"shard {shard_id!r} now served from machine "
          f"{new_shard.machine.machine_id}")

    def phase_verify():
        lost = 0
        for key, value in acked.items():
            got = yield from client.get(key)
            if got != value:
                lost += 1
        print(f"[{sim.now/MS:9.2f}ms] verified {len(acked)} acknowledged "
              f"writes on the promoted shard: {lost} lost")
        status = yield from client.put(b"order:after", b"post-failover")
        print(f"[{sim.now/MS:9.2f}ms] new write after failover -> "
              f"{status.name}")

    cluster.run(phase_verify())


if __name__ == "__main__":
    main()
