#!/usr/bin/env python3
"""Call Data Record processing scenario (§2.3).

Telecom stream Processing Elements perform subscriber lookups and CDR
updates against HydraDB under hard service objectives: millions of
accesses per second in aggregate, latencies within hundreds of
microseconds.  Reference data is bulk-loaded periodically; PEs then issue
a lookup-heavy mix.

Run with::

    python examples/call_records.py
"""

from repro import HydraCluster
from repro.workloads import CdrProfile, load_subscribers, run_pes


def main() -> None:
    profile = CdrProfile(
        n_subscribers=20_000,
        lookup_fraction=0.85,
        slo_throughput_mops=1.0,   # ">= millions of accesses per second"
        slo_p99_us=300.0,          # "<= hundreds of microseconds"
    )
    cluster = HydraCluster(n_server_machines=1, shards_per_server=4,
                           n_client_machines=4)
    print(f"loading {profile.n_subscribers} subscriber records...")
    load_subscribers(cluster, profile)
    cluster.start()

    for n_pes in (8, 16, 32, 48):
        report = run_pes(cluster, profile, n_pes=n_pes, ops_per_pe=400)
        status = "MEETS SLO" if report.meets(profile) else "VIOLATES SLO"
        print(f"PEs={n_pes:3d}  throughput={report.throughput_mops:6.3f} "
              f"Mops  lookup p99={report.lookup_p99_us:6.1f}us  "
              f"update p99={report.update_p99_us:6.1f}us  -> {status}")

    print("\nHydraDB sustains the CDR service objectives that shared-memory"
          "\ndeployments could not scale to (§2.3).")


if __name__ == "__main__":
    main()
