"""Fig. 2 — Hadoop/Spark speedups with the HydraDB cache over in-memory HDFS.

Paper shape: I/O-bound Hadoop jobs (TestDFSIO, Data Loading) speed up by
an order of magnitude (up to 17.9x); Spark jobs gain 4-41%; the RDMA
transport beats TCP for every application.
"""

from repro.bench.experiments import fig2_mapreduce
from repro.bench.report import print_table

from .conftest import run_once


def test_fig2_mapreduce_speedups(benchmark, scale):
    rows = run_once(benchmark, fig2_mapreduce, scale=max(scale, 0.25))
    print_table(rows, "Fig. 2 — MapReduce acceleration (speedup vs "
                      "in-memory HDFS)")
    by_app = {r["app"]: r for r in rows}
    # I/O-bound Hadoop jobs: order-of-magnitude speedups.
    assert by_app["TestDFSIO-Read"]["speedup_rdma"] > 8
    assert by_app["Data-Loading"]["speedup_rdma"] > 8
    # Spark jobs: modest single-digit-percent to ~50% gains.
    for app in ("Spark-Scan", "Spark-Join", "Spark-KMeans",
                "Spark-PageRank"):
        assert 1.0 < by_app[app]["speedup_rdma"] < 1.7
    # RDMA beats TCP for every application (Fig. 2's second message).
    for r in rows:
        assert r["speedup_rdma"] > r["speedup_tcp"] * 0.95
        assert r["speedup_tcp"] > 1.0
