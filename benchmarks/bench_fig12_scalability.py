"""Fig. 12 — scalability: scale-out (a,b) and scale-up (c,d).

Paper shape:

* scale-out, uniform: near-linear for the mixed workloads; 100% GET is
  attenuated by client/server co-location;
* scale-out, zipfian: saturates around 5-6 machines (skew defeats
  rebalancing once the hot shard is pinned at capacity);
* scale-up: effective scaling to ~5 shards for uniform mixed workloads,
  then the QP-count wall (shards x clients connections) bends the curve;
  zipfian saturates earlier; 100% GET barely scales (the NIC's RDMA
  processing is saturated from the start, and more shards only add
  connections).

Scale-out needs enough operations per run for hot-shard queueing to bite,
so it runs at a minimum scale of 1.2 regardless of REPRO_SCALE.
"""

from repro.bench.experiments import fig12_scale_out, fig12_scale_up
from repro.bench.report import print_table

from .conftest import run_once

MIXED = ["(a) 50% GET zipf", "(d) 50% GET unif"]
ALL_GET = ["(c) 100% GET zipf", "(f) 100% GET unif"]


def test_fig12_scale_out(benchmark, scale):
    rows = run_once(benchmark, fig12_scale_out, scale=max(scale, 1.2),
                    subset=MIXED + ALL_GET)
    print_table(rows, "Fig. 12(a,b) — scale-out 1..7 machines")
    norm = {(r["workload"], r["servers"]): r["normalized"] for r in rows}
    # Uniform mixed workload scales out near-linearly.
    assert norm[("(d) 50% GET unif", 7)] > 4.5
    # Zipfian mixed ends below the uniform curve and plateaus at ~6
    # machines (the paper's saturation point).
    assert norm[("(a) 50% GET zipf", 7)] < norm[("(d) 50% GET unif", 7)]
    assert norm[("(a) 50% GET zipf", 7)] < \
        norm[("(a) 50% GET zipf", 6)] * 1.12
    # 100% GET scale-out is attenuated (co-location + NIC effects).
    assert norm[("(f) 100% GET unif", 7)] < norm[("(d) 50% GET unif", 7)]
    assert norm[("(c) 100% GET zipf", 7)] < norm[("(d) 50% GET unif", 7)]


def test_fig12_scale_up(benchmark, scale):
    rows = run_once(benchmark, fig12_scale_up, scale=scale,
                    subset=MIXED + ALL_GET)
    print_table(rows, "Fig. 12(c,d) — scale-up 1..8 shards")
    norm = {(r["workload"], r["shards"]): r["normalized"] for r in rows}
    # Uniform mixed: effective scaling through ~5 shards...
    assert norm[("(d) 50% GET unif", 5)] > 3.2
    # ...then the connection wall: per-shard gains shrink past 5.
    gain_early = norm[("(d) 50% GET unif", 5)] / 5
    gain_late = (norm[("(d) 50% GET unif", 8)]
                 - norm[("(d) 50% GET unif", 5)]) / 3
    assert gain_late < gain_early
    # Zipfian saturates earlier than uniform.
    assert norm[("(a) 50% GET zipf", 8)] < norm[("(d) 50% GET unif", 8)]
    # 100% GET: the device is saturated with few shards; adding more only
    # adds QP state and the curve peaks early, then flattens or declines.
    for wl in ALL_GET:
        peak_at = max(range(1, 9), key=lambda n: norm[(wl, n)])
        assert peak_at <= 5, wl
        assert norm[(wl, 8)] < 2.5, wl
        assert norm[(wl, 8)] <= norm[(wl, peak_at)], wl
