"""Ablations for the design choices DESIGN.md calls out.

* compact vs chained hash table (§4.1.3): fewer cachelines and key
  comparisons per operation;
* NUMA confinement vs interleaved vs remote placement (§4.1.2);
* shared vs exclusive remote-pointer cache (§4.2.4): the cascading
  invalidation effect;
* replication ack interval (§5.2): how relaxed acknowledgements amortize.
"""

from repro.bench.experiments import (
    ablation_ack_interval,
    ablation_hash_table,
    ablation_numa,
    ablation_rptr_sharing,
)
from repro.bench.report import print_table

from .conftest import run_once


def test_ablation_hash_table(benchmark, scale):
    rows = run_once(benchmark, ablation_hash_table, scale=scale)
    print_table(rows, "Ablation — compact vs chained hash table")
    by = {r["table"]: r for r in rows}
    assert by["compact"]["lines_per_op"] < by["chained"]["lines_per_op"]
    assert by["compact"]["keycmps_per_op"] < by["chained"]["keycmps_per_op"]
    assert by["compact"]["throughput_mops"] >= \
        0.98 * by["chained"]["throughput_mops"]


def test_ablation_numa(benchmark, scale):
    rows = run_once(benchmark, ablation_numa, scale=scale)
    print_table(rows, "Ablation — NUMA placement")
    by = {r["numa_mode"]: r for r in rows}
    assert by["local"]["throughput_mops"] > by["interleaved"]["throughput_mops"]
    assert by["interleaved"]["throughput_mops"] > \
        by["remote"]["throughput_mops"]
    assert by["local"]["get_us"] < by["remote"]["get_us"]


def test_ablation_rptr_sharing(benchmark, scale):
    rows = run_once(benchmark, ablation_rptr_sharing, scale=scale)
    print_table(rows, "Ablation — shared vs exclusive rptr cache")
    by = {r["sharing"]: r for r in rows}
    # Exclusive caches: every co-located client pays its own invalid read
    # after an update (the cascading effect); sharing collapses them.
    assert by[True]["invalid_hits"] < by[False]["invalid_hits"]
    assert by[True]["caches"] == 1
    assert by[False]["caches"] > 1


def test_ablation_ack_interval(benchmark, scale):
    rows = run_once(benchmark, ablation_ack_interval)
    print_table(rows, "Ablation — replication ack interval")
    by = {r["ack_interval"]: r for r in rows}
    # Per-record ack solicitation costs more than relaxed intervals.
    assert by[1]["avg_insert_us"] >= by[32]["avg_insert_us"] * 0.99
    assert by[1]["ack_requests"] > by[128]["ack_requests"]


def test_ablation_subsharding(benchmark, scale):
    from repro.bench.experiments import ablation_subsharding
    rows = run_once(benchmark, ablation_subsharding, scale=max(scale, 0.8))
    print_table(rows, "Ablation — sub-sharding (§6.3)")
    by = {(r["regime"], r["layout"].split(" ")[0]): r for r in rows}
    read_sub = by[("read-heavy cached", "1x8")]
    read_plain = by[("read-heavy cached", "8")]
    # Collapsing the QP count wins where the NIC is the bottleneck...
    assert read_sub["throughput_mops"] > 1.15 * read_plain["throughput_mops"]
    assert read_sub["server_qps"] < read_plain["server_qps"]
    # ...but the single dispatcher binds on message-heavy mixes.
    msg_sub = by[("message-heavy", "1x8")]
    msg_plain = by[("message-heavy", "8")]
    assert msg_plain["throughput_mops"] > msg_sub["throughput_mops"]


def test_ablation_sleep_backoff(benchmark, scale):
    from repro.bench.experiments import ablation_sleep_backoff
    rows = run_once(benchmark, ablation_sleep_backoff)
    print_table(rows, "Ablation — sleep backoff vs busy polling (§4.2.1)")
    by = {r["sleep_backoff"]: r for r in rows}
    # Sleep mode: negligible CPU under light load...
    assert by[True]["core_utilization_pct"] < 10
    # ...busy polling pegs the core...
    assert by[False]["core_utilization_pct"] > 90
    # ...and the latency sacrifice is negligible (<5%).
    assert by[True]["avg_update_us"] < by[False]["avg_update_us"] * 1.05


def test_ablation_lease_length(benchmark, scale):
    from repro.bench.experiments import ablation_lease_length
    rows = run_once(benchmark, ablation_lease_length, scale=scale)
    print_table(rows, "Ablation — lease length (§4.2.3 / C-Hint)")
    assert len(rows) >= 3
    # Longer leases: monotonically better fast-path hit rate...
    hits = [r["fastpath_hit_pct"] for r in rows]
    assert hits == sorted(hits)
    # ...but monotonically more retired extents held in the arena.
    pending = [r["retired_pending"] for r in rows]
    assert pending == sorted(pending)
    assert pending[-1] > 5 * max(1, pending[0])


def test_ablation_value_size(benchmark, scale):
    from repro.bench.experiments import ablation_value_size
    rows = run_once(benchmark, ablation_value_size)
    print_table(rows, "Ablation — value size sweep (§6)")
    # Small items are op-rate bound; large items converge on line rate.
    assert rows[0]["throughput_kops"] > 10 * rows[-1]["throughput_kops"]
    assert rows[-1]["goodput_gbps"] > 30       # ~40 Gb/s fabric
    assert rows[0]["get_mean_us"] < 10
    goodputs = [r["goodput_gbps"] for r in rows]
    assert goodputs == sorted(goodputs)


def test_ablation_transport(benchmark, scale):
    from repro.bench.experiments import ablation_transport
    rows = run_once(benchmark, ablation_transport, scale=scale)
    print_table(rows, "Ablation — HydraDB-RDMA vs HydraDB-TCP")
    by = {r["transport"]: r for r in rows}
    # The KV-level RDMA-vs-TCP gap behind Fig. 2: order of magnitude.
    assert by["rdma"]["throughput_mops"] > 8 * by["tcp"]["throughput_mops"]
    assert by["tcp"]["get_us"] > 10 * by["rdma"]["get_us"]


def test_ablation_ud_messaging(benchmark, scale):
    from repro.bench.experiments import ablation_ud_messaging
    rows = run_once(benchmark, ablation_ud_messaging)
    print_table(rows, "Ablation — RC vs HERD-style UD messaging (§3)")
    by = {(r["transport"], r["background_qps"]): r for r in rows}
    # RC delivers everything; its RTT grows past the QP cache.
    assert all(by[("rc_send", bg)]["delivered_pct"] == 100.0
               for bg in (0, 256, 512))
    assert by[("rc_send", 512)]["mean_rtt_us"] > \
        by[("rc_send", 0)]["mean_rtt_us"] * 1.1
    # UD is flat in connection count (HERD's point)...
    assert by[("ud", 512)]["mean_rtt_us"] <= \
        by[("ud", 0)]["mean_rtt_us"] * 1.02
    # ...but loses datagrams (the paper's reliability objection).
    assert by[("ud", 0)]["delivered_pct"] < 99.0
