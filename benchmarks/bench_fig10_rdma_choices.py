"""Fig. 10 — incremental evaluation of the RDMA design choices.

Paper shape (per workload (a)-(f)):

* RDMA-Write messaging beats Send/Recv by 74.7-162.6%, with the gap
  growing with the GET fraction;
* adding remote-pointer caching (RDMA Read) gains up to ~30% on zipfian
  read-heavy mixes and much less on uniform ones;
* the single-threaded shard beats the pipelined design (which uses 4x the
  cores) by up to 94.8%, worst for update-heavy mixes (§6.2.1).
"""

from repro.bench.experiments import fig10_rdma_choices
from repro.bench.report import print_table

from .conftest import run_once


def test_fig10_rdma_choices(benchmark, scale):
    rows = run_once(benchmark, fig10_rdma_choices, scale=scale)
    print_table(rows, "Fig. 10 — RDMA design choices")
    t = {(r["workload"], r["variant"]): r["throughput_mops"] for r in rows}
    workloads = sorted({r["workload"] for r in rows})
    for wl in workloads:
        send_recv = t[(wl, "Send/Recv")]
        write_only = t[(wl, "RDMA Write Only")]
        write_read = t[(wl, "RDMA Write + Read")]
        pipeline = t[(wl, "Pipeline + RDMA Write")]
        # RDMA-Write messaging wins substantially over Send/Recv.
        assert write_only > 1.5 * send_recv, wl
        # Remote-pointer caching never hurts.
        assert write_read >= 0.97 * write_only, wl
        # Single-threaded beats pipelined despite 4x fewer cores.
        assert write_only > 1.1 * pipeline, wl
    # The Send/Recv gap grows with GET fraction (paper: 78.9% -> 155.2%).
    gap = {wl: t[(wl, "RDMA Write Only")] / t[(wl, "Send/Recv")]
           for wl in workloads}
    assert gap["(c) 100% GET zipf"] > gap["(a) 50% GET zipf"]
    assert gap["(f) 100% GET unif"] > gap["(d) 50% GET unif"]
    # The pipeline gap is worst for update-heavy mixes (94.8% at (a)).
    pgap = {wl: t[(wl, "RDMA Write Only")] / t[(wl, "Pipeline + RDMA Write")]
            for wl in workloads}
    assert pgap["(a) 50% GET zipf"] > pgap["(c) 100% GET zipf"]
    assert pgap["(a) 50% GET zipf"] > 1.6
    # Read caching helps zipfian more than uniform at the same mix.
    rgain_zipf = t[("(c) 100% GET zipf", "RDMA Write + Read")] / \
        t[("(c) 100% GET zipf", "RDMA Write Only")]
    rgain_unif = t[("(f) 100% GET unif", "RDMA Write + Read")] / \
        t[("(f) 100% GET unif", "RDMA Write Only")]
    assert rgain_zipf > rgain_unif
