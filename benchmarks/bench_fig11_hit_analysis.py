"""Fig. 11 — remote-pointer hit analysis across the six YCSB mixes.

Paper shape: successful hits collapse as the update ratio rises (-75.5%
from 0% to 50% updates, zipfian) while invalid hits explode; uniform
workloads reuse pointers far less than zipfian ones.
"""

from repro.bench.experiments import fig11_hit_analysis
from repro.bench.report import print_table

from .conftest import run_once


def test_fig11_hits(benchmark, scale):
    rows = run_once(benchmark, fig11_hit_analysis, scale=scale)
    print_table(rows, "Fig. 11 — remote-pointer hits")
    by = {r["workload"]: r for r in rows}
    # Pure-GET runs never observe an invalid pointer.
    assert by["(c) 100% GET zipf"]["invalid_hits"] == 0
    assert by["(f) 100% GET unif"]["invalid_hits"] == 0
    # Updates destroy successful hits (paper: -75.5% from 0% -> 50% upd).
    assert by["(a) 50% GET zipf"]["successful_hits"] < \
        0.5 * by["(c) 100% GET zipf"]["successful_hits"]
    # ...and create invalid hits.
    assert by["(a) 50% GET zipf"]["invalid_hits"] > \
        by["(b) 90% GET zipf"]["invalid_hits"] * 0.5
    assert by["(a) 50% GET zipf"]["invalid_hits"] > 0
    # Zipfian reuses pointers far more than uniform at every mix.
    for z, u in (("(a) 50% GET zipf", "(d) 50% GET unif"),
                 ("(b) 90% GET zipf", "(e) 90% GET unif"),
                 ("(c) 100% GET zipf", "(f) 100% GET unif")):
        assert by[z]["successful_hits"] > 1.5 * by[u]["successful_hits"]
