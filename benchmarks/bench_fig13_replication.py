"""Fig. 13 — replication protocols: RDMA logging vs strict request/ack.

Paper shape: strict request/acknowledge consistently ~doubles the INSERT
latency; RDMA logging replication adds only ~12.3% for one replica and
~41.1% for two.
"""

from repro.bench.experiments import fig13_replication
from repro.bench.report import print_table

from .conftest import run_once


def test_fig13_replication(benchmark, scale):
    rows = run_once(benchmark, fig13_replication, scale=scale,
                    client_counts=(1, 10, 20, 40))
    print_table(rows, "Fig. 13 — replication latency overhead")
    by = {(r["clients"], r["protocol"]): r for r in rows}
    for n in (1, 10, 20, 40):
        log1 = by[(n, "rdma logging x1")]["overhead_pct"]
        log2 = by[(n, "rdma logging x2")]["overhead_pct"]
        strict1 = by[(n, "strict req/ack x1")]["overhead_pct"]
        strict2 = by[(n, "strict req/ack x2")]["overhead_pct"]
        # Logging is cheap: one replica well under 35%, two under 60%.
        assert log1 < 35
        assert log1 < log2 < 60
        # Strict req/ack roughly doubles latency (or worse, loaded).
        assert strict1 > 60
        assert strict2 >= strict1 * 0.9
        # Logging always beats strict.
        assert log2 < strict1
