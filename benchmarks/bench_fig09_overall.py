"""Fig. 9 — HydraDB vs Memcached / Redis / RAMCloud on six YCSB mixes.

Paper shape: HydraDB delivers an order of magnitude higher throughput than
the baselines with far lower latency; its throughput grows strongly with
the GET fraction (+246% zipfian, +183% uniform from 50% to 100% GET);
skewed read-heavy workloads benefit the most from RDMA Read.
"""

from repro.bench.experiments import fig9_overall
from repro.bench.report import print_table

from .conftest import run_once


def test_fig9_overall(benchmark, scale):
    rows = run_once(benchmark, fig9_overall, scale=scale)
    print_table(rows, "Fig. 9 — overall comparison")
    t = {(r["workload"], r["system"]): r["throughput_mops"] for r in rows}
    lat = {(r["workload"], r["system"]): r["get_us"] for r in rows}
    workloads = sorted({r["workload"] for r in rows})
    # Order-of-magnitude throughput over the TCP baselines everywhere,
    # and a clear win over RAMCloud.
    for wl in workloads:
        assert t[(wl, "hydradb")] > 5 * t[(wl, "memcached")]
        assert t[(wl, "hydradb")] > 5 * t[(wl, "redis")]
        assert t[(wl, "hydradb")] > 1.5 * t[(wl, "ramcloud")]
        assert lat[(wl, "hydradb")] < lat[(wl, "memcached")] / 4
    # GET-fraction scaling (the paper's 246% / 183% observations).
    zipf_gain = t[("(c) 100% GET zipf", "hydradb")] / \
        t[("(a) 50% GET zipf", "hydradb")]
    unif_gain = t[("(f) 100% GET unif", "hydradb")] / \
        t[("(d) 50% GET unif", "hydradb")]
    assert zipf_gain > 2.0
    assert unif_gain > 1.7
    # Skewed read-heavy beats uniform read-heavy (RDMA Read reuse).
    assert t[("(c) 100% GET zipf", "hydradb")] >= \
        0.9 * t[("(f) 100% GET unif", "hydradb")]
