"""Fig. 3 — G2 Sensemaking: throughput vs engine count.

Paper shape: the in-memory database saturates early; HydraDB lets ~4x more
engines operate effectively and delivers up to an order of magnitude more
throughput.
"""

from repro.bench.experiments import fig3_sensemaking
from repro.bench.report import print_table

from .conftest import run_once


def test_fig3_g2_engines(benchmark, scale):
    rows = run_once(benchmark, fig3_sensemaking, scale=scale)
    print_table(rows, "Fig. 3 — G2 engines vs store throughput")
    by_n = {r["engines"]: r for r in rows}
    # Order-of-magnitude advantage at every engine count.
    for r in rows:
        assert r["ratio"] > 8
    # The DB saturates: going 8 -> 32 engines gains it little...
    db_gain = by_n[32]["db_events_per_s"] / by_n[8]["db_events_per_s"]
    assert db_gain < 1.5
    # ...while HydraDB keeps scaling (>= ~4x more effective engines).
    hydra_gain = by_n[32]["hydra_events_per_s"] / by_n[8]["hydra_events_per_s"]
    assert hydra_gain > 1.5
