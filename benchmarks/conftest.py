"""Shared benchmark configuration.

Benchmarks run each figure's experiment once (rounds=1) — the "timing"
pytest-benchmark records is the wall-clock cost of reproducing the figure,
and the interesting output is the printed paper-style table.  Scale the
experiments up with e.g. ``REPRO_SCALE=3 pytest benchmarks/``.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> float:
    """Experiment scale factor (fraction of the 10k-op default)."""
    return float(os.environ.get("REPRO_SCALE", "0.4"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
